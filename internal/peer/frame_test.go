package peer

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"dip/internal/wire"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := map[byte][]byte{
		frameHello:   []byte(`{"version":1}`),
		frameEnd:     nil,
		frameHelloOK: {0xDE, 0xAD},
	}
	for typ, p := range payloads {
		buf.Reset()
		if err := writeFrame(&buf, typ, p); err != nil {
			t.Fatal(err)
		}
		gotTyp, gotP, err := readFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if gotTyp != typ || !bytes.Equal(gotP, p) {
			t.Fatalf("type 0x%02x: round trip got (0x%02x, %x)", typ, gotTyp, gotP)
		}
	}
}

func TestReadFrameRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		raw  []byte
		frag string
	}{
		{"zero-length", []byte{0, 0, 0, 0}, "zero-length"},
		{"oversized-claim", []byte{0xFF, 0xFF, 0xFF, 0xFF}, "exceeds"},
		{"truncated-header", []byte{0, 0}, "EOF"},
		{"truncated-body", []byte{0, 0, 0, 5, frameEnd}, "truncated"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := readFrame(bytes.NewReader(tc.raw))
			if err == nil || !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("err = %v, want mention of %q", err, tc.frag)
			}
		})
	}
}

func TestWriteFrameRejectsOversized(t *testing.T) {
	if err := writeFrame(&bytes.Buffer{}, frameHello, make([]byte, maxFrame)); err == nil {
		t.Fatal("writeFrame accepted a body over the cap")
	}
}

func TestDeliveryRoundTrip(t *testing.T) {
	for _, m := range []wire.Message{
		{},
		{Data: []byte{0xAB}, Bits: 8},
		{Data: []byte{0xAB, 0x03}, Bits: 11},
	} {
		p, err := encodeDelivery(3, 7, m)
		if err != nil {
			t.Fatal(err)
		}
		round, node, got, err := decodeDelivery(p)
		if err != nil {
			t.Fatal(err)
		}
		if round != 3 || node != 7 || got.Bits != m.Bits || !bytes.Equal(got.Data, m.Data) {
			t.Fatalf("round trip of %+v got (%d, %d, %+v)", m, round, node, got)
		}
	}
}

func TestDeliveryRejectsMalformed(t *testing.T) {
	good, err := encodeDelivery(1, 2, wire.Message{Data: []byte{0xFF}, Bits: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := decodeDelivery(good[:len(good)-1]); err == nil {
		t.Fatal("accepted truncated message data")
	}
	if _, _, _, err := decodeDelivery(append(good, 0x00)); err == nil {
		t.Fatal("accepted trailing bytes")
	}
	if _, _, _, err := decodeDelivery(good[:6]); err == nil {
		t.Fatal("accepted truncated header")
	}
	// An oversized bit claim must be rejected before its byte length is even
	// derived, let alone allocated.
	hostile := make([]byte, 12)
	binary.BigEndian.PutUint32(hostile[8:], uint32(maxMsgBits+1))
	if _, _, _, err := decodeDelivery(hostile); err == nil || !strings.Contains(err.Error(), "claims") {
		t.Fatalf("oversized bits claim: err = %v", err)
	}
	// Malformed messages must not leave the process either.
	if _, err := encodeDelivery(0, 0, wire.Message{Data: []byte{1, 2}, Bits: 3}); err == nil {
		t.Fatal("encoded a message whose Data length contradicts Bits")
	}
}

func TestExchangeRoundTrip(t *testing.T) {
	for _, chal := range []bool{false, true} {
		m := wire.Message{Data: []byte{0x5A, 0x01}, Bits: 9}
		p, err := encodeExchange(2, 4, 6, chal, m)
		if err != nil {
			t.Fatal(err)
		}
		round, from, to, gotChal, got, err := decodeExchange(p)
		if err != nil {
			t.Fatal(err)
		}
		if round != 2 || from != 4 || to != 6 || gotChal != chal ||
			got.Bits != m.Bits || !bytes.Equal(got.Data, m.Data) {
			t.Fatalf("chal=%v round trip got (%d, %d→%d, %v, %+v)", chal, round, from, to, gotChal, got)
		}
	}
}

func TestExchangeRejectsUnknownFlags(t *testing.T) {
	p, err := encodeExchange(0, 0, 1, false, wire.Message{})
	if err != nil {
		t.Fatal(err)
	}
	p[12] = 0x04
	if _, _, _, _, _, err := decodeExchange(p); err == nil || !strings.Contains(err.Error(), "flags") {
		t.Fatalf("unknown flags: err = %v", err)
	}
}

func TestDecisionRoundTrip(t *testing.T) {
	for _, d := range []bool{false, true} {
		node, got, err := decodeDecision(encodeDecision(9, d))
		if err != nil {
			t.Fatal(err)
		}
		if node != 9 || got != d {
			t.Fatalf("round trip of (9, %v) got (%d, %v)", d, node, got)
		}
	}
	if _, _, err := decodeDecision([]byte{0, 0, 0, 1, 2}); err == nil {
		t.Fatal("accepted decision byte 2")
	}
	if _, _, err := decodeDecision([]byte{0, 0, 0, 1}); err == nil {
		t.Fatal("accepted 4-byte decision payload")
	}
}
