package peer

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"dip/internal/network"
	"dip/internal/wire"
)

// Options configure a Coordinator.
type Options struct {
	// DialTimeout bounds each peer dial; zero selects 5s.
	DialTimeout time.Duration
	// IOTimeout bounds every blocking receive (and each send) during the
	// run: a peer that goes silent longer than this fails the run with a
	// PhaseTransport RunError instead of hanging it. Zero selects
	// DefaultIOTimeout. Options.Cancel on the engine side (RunContext
	// deadlines) still aborts sooner.
	IOTimeout time.Duration
	// SendDelay, when positive, sleeps before every outbound frame: a
	// transport-level slow-link emulation for fault experiments. It delays
	// only; message bytes are never altered (corruption belongs to the
	// engine funnel's injectors, which run before the transport sees the
	// message).
	SendDelay time.Duration
}

// Coordinator implements network.Transport over a fleet of peer servers:
// Dial records the fleet, Begin connects and provisions it (nodes are
// assigned round-robin: node v lives on peer v mod k), and the frame
// traffic of the run flows through one reader goroutine per connection
// into a single inbox the engine's executor drains. A Coordinator serves
// exactly one run; End tears the fleet connections down.
type Coordinator struct {
	addrs  []string
	params []byte
	opts   Options

	protocol string
	n        int
	cancel   <-chan struct{}
	conns    []net.Conn
	readers  []*bufio.Reader
	assign   []int // node → connection index
	inbox    chan inFrame
	// pending buffers frames from peers running ahead of the coordinator's
	// schedule walk, keyed by pendKey (frame type and round).
	pending map[uint64][]inFrame
	quit    chan struct{}
	wg      sync.WaitGroup
	ended   bool
}

// inFrame is one frame (or terminal read error) from a peer connection.
type inFrame struct {
	conn    int
	typ     byte
	payload []byte
	err     error
}

// Dial builds a coordinator for the given peer fleet. params is the opaque
// protocol parameter blob every peer's SpecBuilder will rebuild the Spec
// from (for dippeer fleets: a JSON dip.Request without edge lists).
// Connections are not opened until Begin, so a Coordinator can be handed
// to network.Run before the fleet is reachable.
func Dial(addrs []string, params []byte, opts Options) (*Coordinator, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("peer: no peer addresses")
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 5 * time.Second
	}
	if opts.IOTimeout <= 0 {
		opts.IOTimeout = DefaultIOTimeout
	}
	return &Coordinator{
		addrs:   append([]string(nil), addrs...),
		params:  append([]byte(nil), params...),
		opts:    opts,
		quit:    make(chan struct{}),
		pending: make(map[uint64][]inFrame),
	}, nil
}

// failf builds a PhaseTransport RunError.
func (c *Coordinator) failf(round, node int, format string, args ...any) *network.RunError {
	return &network.RunError{Protocol: c.protocol, Phase: network.PhaseTransport,
		Round: round, Node: node, Err: fmt.Errorf(format, args...)}
}

// Begin dials the fleet, provisions every peer with its node slice, and
// waits for all handshake acknowledgements.
func (c *Coordinator) Begin(run *network.TransportRun) *network.RunError {
	c.protocol = run.Spec.Name
	c.n = run.N
	c.cancel = run.Cancel
	k := len(c.addrs)
	c.assign = make([]int, run.N)
	perConn := make([][]helloNode, k)
	for v := 0; v < run.N; v++ {
		ci := v % k
		c.assign[v] = ci
		var input wire.Message
		if run.Inputs != nil {
			input = run.Inputs[v]
		}
		perConn[ci] = append(perConn[ci], helloNode{
			V: v,
			// Copy: TransportRun.Neighbors aliases pooled engine state.
			Neighbors: append([]int(nil), run.Neighbors[v]...),
			InputBits: input.Bits,
			InputData: input.Data,
		})
	}
	c.conns = make([]net.Conn, 0, k)
	c.readers = make([]*bufio.Reader, 0, k)
	for i, addr := range c.addrs {
		if len(perConn[i]) == 0 {
			return c.failf(-1, -1, "fleet of %d peers for %d nodes leaves peer %s idle", k, run.N, addr)
		}
		conn, err := net.DialTimeout("tcp", addr, c.opts.DialTimeout)
		if err != nil {
			return c.failf(-1, -1, "dialing peer %s: %v", addr, err)
		}
		c.conns = append(c.conns, conn)
		c.readers = append(c.readers, bufio.NewReader(conn))
		hello := helloFrame{Version: Version, Params: c.params, Seed: run.Seed, N: run.N, Nodes: perConn[i]}
		payload, jerr := json.Marshal(hello)
		if jerr != nil {
			return c.failf(-1, -1, "marshaling hello: %v", jerr)
		}
		if rerr := c.send(i, frameHello, payload); rerr != nil {
			return rerr
		}
	}
	for i := range c.conns {
		c.conns[i].SetReadDeadline(time.Now().Add(c.opts.IOTimeout))
		typ, payload, err := readFrame(c.readers[i])
		if err != nil {
			return c.failf(-1, -1, "peer %s handshake: %v", c.addrs[i], err)
		}
		switch typ {
		case frameHelloOK:
			var ok helloOKFrame
			if jerr := json.Unmarshal(payload, &ok); jerr != nil {
				return c.failf(-1, -1, "peer %s handshake: %v", c.addrs[i], jerr)
			}
			if ok.Version != Version || ok.Nodes != len(perConn[i]) {
				return c.failf(-1, -1, "peer %s acknowledged version %d, %d nodes (want %d, %d)",
					c.addrs[i], ok.Version, ok.Nodes, Version, len(perConn[i]))
			}
		case frameError:
			var ef errorFrame
			if jerr := json.Unmarshal(payload, &ef); jerr != nil {
				return c.failf(-1, -1, "peer %s handshake error frame: %v", c.addrs[i], jerr)
			}
			return ef.runError()
		default:
			return c.failf(-1, -1, "peer %s handshake frame type 0x%02x", c.addrs[i], typ)
		}
	}
	// Handshakes done: clear the read deadlines (liveness is now enforced
	// per-receive by recv's timer) and hand each connection to a reader
	// goroutine feeding the shared inbox.
	c.inbox = make(chan inFrame, c.n+k)
	for i := range c.conns {
		c.conns[i].SetReadDeadline(time.Time{})
		c.wg.Add(1)
		go c.reader(i)
	}
	return nil
}

// reader pumps frames from one connection into the inbox until the
// connection dies or the run ends.
func (c *Coordinator) reader(i int) {
	defer c.wg.Done()
	for {
		typ, payload, err := readFrame(c.readers[i])
		select {
		case c.inbox <- inFrame{conn: i, typ: typ, payload: payload, err: err}:
		case <-c.quit:
			return
		}
		if err != nil {
			return
		}
	}
}

// pendKey buckets buffered ahead-of-phase frames: challenge and forward
// frames carry their round in the payload's first four bytes, decision
// frames have no round.
func pendKey(typ byte, round int) uint64 {
	if typ == frameDecision {
		round = 0
	}
	return uint64(typ)<<32 | uint64(uint32(round))
}

// frameRound extracts a delivery frame's own round claim (ok=false when the
// payload is too short to carry one).
func frameRound(f inFrame) (int, bool) {
	if len(f.payload) < 4 {
		return 0, false
	}
	return int(binary.BigEndian.Uint32(f.payload)), true
}

// recv returns the next frame of the expected type and round, translating
// terminal conditions: connection loss and silence past IOTimeout become
// PhaseTransport errors, engine cancellation becomes PhaseCanceled, and a
// peer's error frame surfaces as the RunError it carries.
//
// Peers walk the schedule without waiting for the coordinator, so on
// consecutive peer→coordinator steps (an Arthur round straight into
// decide, or two Arthur rounds back to back) a fast peer's frames for a
// later collect phase arrive while the current one is still draining.
// Those frames are buffered under their own (type, round) key and served
// when their phase comes; only types a peer can never legitimately send
// are protocol violations.
func (c *Coordinator) recv(expect byte, round int, what string) (inFrame, *network.RunError) {
	want := pendKey(expect, round)
	if q := c.pending[want]; len(q) > 0 {
		f := q[0]
		c.pending[want] = q[1:]
		return f, nil
	}
	timer := time.NewTimer(c.opts.IOTimeout)
	defer timer.Stop()
	for {
		select {
		case f := <-c.inbox:
			if f.err != nil {
				return f, c.failf(round, -1, "peer %s: %v", c.addrs[f.conn], f.err)
			}
			switch f.typ {
			case frameError:
				var ef errorFrame
				if jerr := json.Unmarshal(f.payload, &ef); jerr != nil {
					return f, c.failf(round, -1, "peer %s error frame: %v", c.addrs[f.conn], jerr)
				}
				return f, ef.runError()
			case frameChallenge, frameForward:
				fr, ok := frameRound(f)
				if !ok {
					// Too short to even carry a round: hand it to the caller's
					// decoder, which reports the malformed payload.
					return f, nil
				}
				if f.typ == expect && fr == round {
					return f, nil
				}
				key := pendKey(f.typ, fr)
				c.pending[key] = append(c.pending[key], f)
			case frameDecision:
				if f.typ == expect {
					return f, nil
				}
				key := pendKey(f.typ, 0)
				c.pending[key] = append(c.pending[key], f)
			default:
				return f, c.failf(round, -1, "peer %s sent frame type 0x%02x awaiting %s", c.addrs[f.conn], f.typ, what)
			}
		case <-c.cancel:
			return inFrame{}, &network.RunError{Protocol: c.protocol, Phase: network.PhaseCanceled,
				Round: round, Node: -1, Err: fmt.Errorf("run canceled awaiting %s", what)}
		case <-timer.C:
			return inFrame{}, c.failf(round, -1, "no %s within %v", what, c.opts.IOTimeout)
		}
	}
}

// send writes one frame to connection ci under the I/O deadline, after the
// configured slow-link delay.
func (c *Coordinator) send(ci int, typ byte, payload []byte) *network.RunError {
	if c.opts.SendDelay > 0 {
		time.Sleep(c.opts.SendDelay)
	}
	conn := c.conns[ci]
	conn.SetWriteDeadline(time.Now().Add(c.opts.IOTimeout))
	if err := writeFrame(conn, typ, payload); err != nil {
		return c.failf(-1, -1, "peer %s write: %v", c.addrs[ci], err)
	}
	return nil
}

// checkSource validates that the peer reporting for node v is the
// connection the node was assigned to — one peer cannot speak for
// another's nodes.
func (c *Coordinator) checkSource(f inFrame, round, v int, what string) *network.RunError {
	if v < 0 || v >= c.n {
		return c.failf(round, -1, "peer %s sent %s for node %d of %d", c.addrs[f.conn], what, v, c.n)
	}
	if c.assign[v] != f.conn {
		return c.failf(round, v, "peer %s sent %s for node %d, hosted by %s",
			c.addrs[f.conn], what, v, c.addrs[c.assign[v]])
	}
	return nil
}

// RecvChallenge implements network.Transport.
func (c *Coordinator) RecvChallenge(ri int) (int, wire.Message, *network.RunError) {
	f, rerr := c.recv(frameChallenge, ri, "challenge")
	if rerr != nil {
		return -1, wire.Message{}, rerr
	}
	round, v, m, err := decodeDelivery(f.payload)
	if err != nil {
		return -1, wire.Message{}, c.failf(ri, -1, "peer %s challenge: %v", c.addrs[f.conn], err)
	}
	if rerr := c.checkSource(f, ri, v, "challenge"); rerr != nil {
		return -1, wire.Message{}, rerr
	}
	if round != ri {
		return -1, wire.Message{}, c.failf(ri, v, "challenge for round %d during round %d", round, ri)
	}
	return v, m, nil
}

// SendResponse implements network.Transport.
func (c *Coordinator) SendResponse(ri, node int, m wire.Message) *network.RunError {
	payload, err := encodeDelivery(ri, node, m)
	if err != nil {
		return c.failf(ri, node, "encoding response: %v", err)
	}
	return c.send(c.assign[node], frameResponse, payload)
}

// RecvForward implements network.Transport.
func (c *Coordinator) RecvForward(ri int) (int, wire.Message, *network.RunError) {
	f, rerr := c.recv(frameForward, ri, "forward")
	if rerr != nil {
		return -1, wire.Message{}, rerr
	}
	round, v, m, err := decodeDelivery(f.payload)
	if err != nil {
		return -1, wire.Message{}, c.failf(ri, -1, "peer %s forward: %v", c.addrs[f.conn], err)
	}
	if rerr := c.checkSource(f, ri, v, "forward"); rerr != nil {
		return -1, wire.Message{}, rerr
	}
	if round != ri {
		return -1, wire.Message{}, c.failf(ri, v, "forward for round %d during round %d", round, ri)
	}
	return v, m, nil
}

// SendExchange implements network.Transport.
func (c *Coordinator) SendExchange(ri, from, to int, chal bool, m wire.Message) *network.RunError {
	payload, err := encodeExchange(ri, from, to, chal, m)
	if err != nil {
		return c.failf(ri, from, "encoding exchange: %v", err)
	}
	return c.send(c.assign[to], frameExchange, payload)
}

// RecvDecision implements network.Transport.
func (c *Coordinator) RecvDecision() (int, bool, *network.RunError) {
	f, rerr := c.recv(frameDecision, -1, "decision")
	if rerr != nil {
		return -1, false, rerr
	}
	v, d, err := decodeDecision(f.payload)
	if err != nil {
		return -1, false, c.failf(-1, -1, "peer %s decision: %v", c.addrs[f.conn], err)
	}
	if rerr := c.checkSource(f, -1, v, "decision"); rerr != nil {
		return -1, false, rerr
	}
	return v, d, nil
}

// End implements network.Transport: tell every peer how the run finished
// (end on success, the failure otherwise), then tear down connections and
// join the readers. Safe when Begin failed partway.
func (c *Coordinator) End(failure *network.RunError) {
	if c.ended {
		return
	}
	c.ended = true
	var payload []byte
	typ := frameEnd
	if failure != nil {
		typ = frameError
		payload, _ = json.Marshal(errorFrameOf(failure))
	}
	for i := range c.conns {
		// Best effort: a peer whose connection already died is skipped by
		// the write error path inside send.
		c.send(i, typ, payload)
	}
	close(c.quit)
	for _, conn := range c.conns {
		conn.Close()
	}
	c.wg.Wait()
}
