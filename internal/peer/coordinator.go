package peer

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"time"

	"dip/internal/network"
	"dip/internal/wire"
)

// Transport implements network.Transport for one run over a Fleet: Begin
// places the run's nodes on the live peers, mints one session id, and
// provisions every involved peer; the frame traffic of the run then
// flows through the fleet's per-connection readers into this run's
// inbox, routed by session id. End releases the session but leaves the
// fleet's connections standing for the next run (unless the transport
// owns a one-shot fleet, built by Dial, which it closes).
type Transport struct {
	fleet     *Fleet
	params    []byte
	ownsFleet bool

	protocol string
	n        int
	cancel   <-chan struct{}
	sess     uint32
	conns    []*fleetConn // run-local connection index → peer
	assign   []int        // node → run-local connection index
	seqs     []int        // per-connection outbound frame sequence (LinkFaults keying)
	inbox    chan inFrame
	sinkDone chan struct{}
	// pending buffers frames from peers running ahead of the coordinator's
	// schedule walk, keyed by pendKey (frame type and round).
	pending map[uint64][]inFrame
	ended   bool
	failed  bool
}

// inFrame is one frame (or terminal read error) from a peer connection,
// attributed to its run-local connection index.
type inFrame struct {
	conn    int
	typ     byte
	payload []byte
	err     error
}

// failf builds a PhaseTransport RunError.
func (t *Transport) failf(round, node int, format string, args ...any) *network.RunError {
	return &network.RunError{Protocol: t.protocol, Phase: network.PhaseTransport,
		Round: round, Node: node, Err: fmt.Errorf(format, args...)}
}

// Begin places the run on the fleet's live peers, provisions each with
// its node slice, and waits for all handshake acknowledgements. Nodes go
// round-robin over the live peers (node v on live peer v mod k); peers
// whose connections are down are redialed once and skipped if still
// unreachable, so a fleet missing a peer keeps serving on the rest.
func (t *Transport) Begin(run *network.TransportRun) *network.RunError {
	t.protocol = run.Spec.Name
	t.n = run.N
	t.cancel = run.Cancel

	t.fleet.mu.Lock()
	closed := t.fleet.closed
	t.fleet.mu.Unlock()
	if closed {
		return t.failf(-1, -1, "fleet closed")
	}
	var lastErr error
	for _, fc := range t.fleet.peers {
		if err := fc.ensure(); err != nil {
			lastErr = err
			continue
		}
		t.conns = append(t.conns, fc)
		if len(t.conns) == run.N {
			break
		}
	}
	if len(t.conns) == 0 {
		return t.failf(-1, -1, "no reachable peers in fleet of %d: %v", len(t.fleet.addrs), lastErr)
	}

	k := len(t.conns)
	t.assign = make([]int, run.N)
	t.seqs = make([]int, k)
	perConn := make([][]helloNode, k)
	for v := 0; v < run.N; v++ {
		ci := v % k
		t.assign[v] = ci
		var input wire.Message
		if run.Inputs != nil {
			input = run.Inputs[v]
		}
		perConn[ci] = append(perConn[ci], helloNode{
			V: v,
			// Copy: TransportRun.Neighbors aliases pooled engine state.
			Neighbors: append([]int(nil), run.Neighbors[v]...),
			InputBits: input.Bits,
			InputData: input.Data,
		})
	}

	t.sess = t.fleet.sess.Add(1)
	t.inbox = make(chan inFrame, 2*run.N+16)
	t.sinkDone = make(chan struct{})
	for _, fc := range t.conns {
		// Count before registering so every release path decrements
		// symmetrically, however far Begin got.
		fc.sessionsOpen.Add(1)
	}
	for i, fc := range t.conns {
		if err := fc.register(t.sess, &sink{ch: t.inbox, conn: i, done: t.sinkDone}); err != nil {
			t.release(true)
			return t.failf(-1, -1, "%v", err)
		}
	}
	for i, fc := range t.conns {
		hello := helloFrame{Proto: Version, Params: t.params, Seed: run.Seed, N: run.N, Nodes: perConn[i]}
		payload, jerr := json.Marshal(hello)
		if jerr != nil {
			t.release(true)
			return t.failf(-1, -1, "marshaling hello: %v", jerr)
		}
		if err := fc.sendFrame(t.sess, frameHello, payload); err != nil {
			t.release(true)
			return t.failf(-1, -1, "%v", err)
		}
	}

	// Await one helloOK per involved peer. A fast peer's post-handshake
	// frames can arrive before a slow peer's acknowledgement; those are
	// buffered for their phase like any ahead-of-schedule frame.
	acked := make([]bool, k)
	timer := time.NewTimer(t.fleet.opts.IOTimeout)
	defer timer.Stop()
	for remaining := k; remaining > 0; {
		select {
		case f := <-t.inbox:
			if f.err != nil {
				t.release(true)
				return t.failf(-1, -1, "handshake: %v", f.err)
			}
			switch f.typ {
			case frameHelloOK:
				var ok helloOKFrame
				if jerr := json.Unmarshal(f.payload, &ok); jerr != nil {
					t.release(true)
					return t.failf(-1, -1, "peer %s handshake: %v", t.conns[f.conn].addr, jerr)
				}
				if ok.Proto != Version || ok.Nodes != len(perConn[f.conn]) {
					t.release(true)
					return t.failf(-1, -1, "peer %s acknowledged proto %d, %d nodes (want %d, %d)",
						t.conns[f.conn].addr, ok.Proto, ok.Nodes, Version, len(perConn[f.conn]))
				}
				if acked[f.conn] {
					t.release(true)
					return t.failf(-1, -1, "peer %s acknowledged twice", t.conns[f.conn].addr)
				}
				acked[f.conn] = true
				remaining--
			case frameError:
				var ef errorFrame
				if jerr := json.Unmarshal(f.payload, &ef); jerr != nil {
					t.release(true)
					return t.failf(-1, -1, "peer %s handshake error frame: %v", t.conns[f.conn].addr, jerr)
				}
				t.release(true)
				return ef.runError()
			case frameChallenge, frameForward:
				if fr, ok := frameRound(f); ok {
					key := pendKey(f.typ, fr)
					t.pending[key] = append(t.pending[key], f)
				}
			case frameDecision:
				key := pendKey(f.typ, 0)
				t.pending[key] = append(t.pending[key], f)
			default:
				t.release(true)
				return t.failf(-1, -1, "peer %s handshake frame type 0x%02x", t.conns[f.conn].addr, f.typ)
			}
		case <-t.cancel:
			t.release(true)
			return &network.RunError{Protocol: t.protocol, Phase: network.PhaseCanceled,
				Round: -1, Node: -1, Err: fmt.Errorf("run canceled during handshake")}
		case <-timer.C:
			t.release(true)
			return t.failf(-1, -1, "handshake incomplete within %v", t.fleet.opts.IOTimeout)
		}
	}
	return nil
}

// pendKey buckets buffered ahead-of-phase frames: challenge and forward
// frames carry their round in the payload's first four bytes, decision
// frames have no round.
func pendKey(typ byte, round int) uint64 {
	if typ == frameDecision {
		round = 0
	}
	return uint64(typ)<<32 | uint64(uint32(round))
}

// frameRound extracts a delivery frame's own round claim (ok=false when the
// payload is too short to carry one).
func frameRound(f inFrame) (int, bool) {
	if len(f.payload) < 4 {
		return 0, false
	}
	return int(binary.BigEndian.Uint32(f.payload)), true
}

// recv returns the next frame of the expected type and round, translating
// terminal conditions: connection loss and silence past IOTimeout become
// PhaseTransport errors, engine cancellation becomes PhaseCanceled, and a
// peer's error frame surfaces as the RunError it carries.
//
// Peers walk the schedule without waiting for the coordinator, so on
// consecutive peer→coordinator steps (an Arthur round straight into
// decide, or two Arthur rounds back to back) a fast peer's frames for a
// later collect phase arrive while the current one is still draining.
// Those frames are buffered under their own (type, round) key and served
// when their phase comes; only types a peer can never legitimately send
// are protocol violations.
func (t *Transport) recv(expect byte, round int, what string) (inFrame, *network.RunError) {
	want := pendKey(expect, round)
	if q := t.pending[want]; len(q) > 0 {
		f := q[0]
		t.pending[want] = q[1:]
		return f, nil
	}
	timer := time.NewTimer(t.fleet.opts.IOTimeout)
	defer timer.Stop()
	for {
		select {
		case f := <-t.inbox:
			if f.err != nil {
				return f, t.failf(round, -1, "%v", f.err)
			}
			switch f.typ {
			case frameError:
				var ef errorFrame
				if jerr := json.Unmarshal(f.payload, &ef); jerr != nil {
					return f, t.failf(round, -1, "peer %s error frame: %v", t.conns[f.conn].addr, jerr)
				}
				return f, ef.runError()
			case frameChallenge, frameForward:
				fr, ok := frameRound(f)
				if !ok {
					// Too short to even carry a round: hand it to the caller's
					// decoder, which reports the malformed payload.
					return f, nil
				}
				if f.typ == expect && fr == round {
					return f, nil
				}
				key := pendKey(f.typ, fr)
				t.pending[key] = append(t.pending[key], f)
			case frameDecision:
				if f.typ == expect {
					return f, nil
				}
				key := pendKey(f.typ, 0)
				t.pending[key] = append(t.pending[key], f)
			default:
				return f, t.failf(round, -1, "peer %s sent frame type 0x%02x awaiting %s", t.conns[f.conn].addr, f.typ, what)
			}
		case <-t.cancel:
			return inFrame{}, &network.RunError{Protocol: t.protocol, Phase: network.PhaseCanceled,
				Round: round, Node: -1, Err: fmt.Errorf("run canceled awaiting %s", what)}
		case <-timer.C:
			return inFrame{}, t.failf(round, -1, "no %s within %v", what, t.fleet.opts.IOTimeout)
		}
	}
}

// send writes one run frame to run-local connection ci, applying the
// fleet's LinkFaults policy first: a delayed frame waits out its
// injected latency on a timer that still honors run cancellation (a
// canceled run returns promptly however large the delay), and a dropped
// frame never reaches the socket — the emulated partition stalls the
// session until a deadline fires and the run fails with a structured
// transport error. Faults apply only to the run's message traffic
// (responses and exchanges), never to session control frames, so a
// faulted link degrades or kills runs but cannot corrupt a handshake.
func (t *Transport) send(ci int, typ byte, payload []byte) *network.RunError {
	fc := t.conns[ci]
	if lf := t.fleet.opts.LinkFaults; lf != nil && lf.Enabled() && (typ == frameResponse || typ == frameExchange) {
		seq := t.seqs[ci]
		t.seqs[ci]++
		delay, drop := lf.Decide(fc.idx, seq)
		if drop {
			fc.framesDropped.Add(1)
			return nil
		}
		if delay > 0 {
			timer := time.NewTimer(delay)
			select {
			case <-timer.C:
			case <-t.cancel:
				timer.Stop()
				return &network.RunError{Protocol: t.protocol, Phase: network.PhaseCanceled,
					Round: -1, Node: -1, Err: fmt.Errorf("run canceled during injected %v link delay", delay)}
			}
		}
	}
	if err := fc.sendFrame(t.sess, typ, payload); err != nil {
		return t.failf(-1, -1, "%v", err)
	}
	return nil
}

// checkSource validates that the peer reporting for node v is the
// connection the node was assigned to — one peer cannot speak for
// another's nodes.
func (t *Transport) checkSource(f inFrame, round, v int, what string) *network.RunError {
	if v < 0 || v >= t.n {
		return t.failf(round, -1, "peer %s sent %s for node %d of %d", t.conns[f.conn].addr, what, v, t.n)
	}
	if t.assign[v] != f.conn {
		return t.failf(round, v, "peer %s sent %s for node %d, hosted by %s",
			t.conns[f.conn].addr, what, v, t.conns[t.assign[v]].addr)
	}
	return nil
}

// RecvChallenge implements network.Transport.
func (t *Transport) RecvChallenge(ri int) (int, wire.Message, *network.RunError) {
	f, rerr := t.recv(frameChallenge, ri, "challenge")
	if rerr != nil {
		return -1, wire.Message{}, rerr
	}
	round, v, m, err := decodeDelivery(f.payload)
	if err != nil {
		return -1, wire.Message{}, t.failf(ri, -1, "peer %s challenge: %v", t.conns[f.conn].addr, err)
	}
	if rerr := t.checkSource(f, ri, v, "challenge"); rerr != nil {
		return -1, wire.Message{}, rerr
	}
	if round != ri {
		return -1, wire.Message{}, t.failf(ri, v, "challenge for round %d during round %d", round, ri)
	}
	return v, m, nil
}

// SendResponse implements network.Transport.
func (t *Transport) SendResponse(ri, node int, m wire.Message) *network.RunError {
	payload, err := encodeDelivery(ri, node, m)
	if err != nil {
		return t.failf(ri, node, "encoding response: %v", err)
	}
	return t.send(t.assign[node], frameResponse, payload)
}

// RecvForward implements network.Transport.
func (t *Transport) RecvForward(ri int) (int, wire.Message, *network.RunError) {
	f, rerr := t.recv(frameForward, ri, "forward")
	if rerr != nil {
		return -1, wire.Message{}, rerr
	}
	round, v, m, err := decodeDelivery(f.payload)
	if err != nil {
		return -1, wire.Message{}, t.failf(ri, -1, "peer %s forward: %v", t.conns[f.conn].addr, err)
	}
	if rerr := t.checkSource(f, ri, v, "forward"); rerr != nil {
		return -1, wire.Message{}, rerr
	}
	if round != ri {
		return -1, wire.Message{}, t.failf(ri, v, "forward for round %d during round %d", round, ri)
	}
	return v, m, nil
}

// SendExchange implements network.Transport.
func (t *Transport) SendExchange(ri, from, to int, chal bool, m wire.Message) *network.RunError {
	payload, err := encodeExchange(ri, from, to, chal, m)
	if err != nil {
		return t.failf(ri, from, "encoding exchange: %v", err)
	}
	return t.send(t.assign[to], frameExchange, payload)
}

// RecvDecision implements network.Transport.
func (t *Transport) RecvDecision() (int, bool, *network.RunError) {
	f, rerr := t.recv(frameDecision, -1, "decision")
	if rerr != nil {
		return -1, false, rerr
	}
	v, d, err := decodeDecision(f.payload)
	if err != nil {
		return -1, false, t.failf(-1, -1, "peer %s decision: %v", t.conns[f.conn].addr, err)
	}
	if rerr := t.checkSource(f, -1, v, "decision"); rerr != nil {
		return -1, false, rerr
	}
	return v, d, nil
}

// End implements network.Transport: tell every involved peer how the run
// finished (end on success, the failure otherwise), then release the
// session. The fleet's connections stay up for the next run; a one-shot
// transport (Dial) closes its private fleet.
func (t *Transport) End(failure *network.RunError) {
	if t.ended {
		return
	}
	t.ended = true
	var payload []byte
	typ := frameEnd
	if failure != nil {
		typ = frameError
		payload, _ = json.Marshal(errorFrameOf(failure))
	}
	for _, fc := range t.conns {
		// Best effort: a peer whose connection already died is skipped by
		// the write error path inside sendFrame.
		_ = fc.sendFrame(t.sess, typ, payload)
	}
	t.failed = failure != nil
	t.release(t.failed)
}

// release unregisters the run's session from every involved connection,
// settles the gauges, and (for one-shot transports) closes the fleet.
// Safe to call more than once; Begin's error paths use it before End.
func (t *Transport) release(failed bool) {
	if t.sinkDone != nil {
		select {
		case <-t.sinkDone:
			// Already released.
		default:
			close(t.sinkDone)
			for _, fc := range t.conns {
				fc.unregister(t.sess)
				fc.sessionsOpen.Add(-1)
				if failed {
					fc.sessionsFailed.Add(1)
				} else {
					fc.sessionsCompleted.Add(1)
				}
			}
		}
	}
	if t.ownsFleet {
		t.fleet.Close()
	}
}
