package peer

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"dip/internal/wire"
)

// TestWriteFuzzCorpus regenerates the checked-in FuzzPeerFrame seed
// corpus under testdata/fuzz/FuzzPeerFrame — the same seeds FuzzPeerFrame
// adds in code, persisted so `go test` replays them even when the fuzz
// engine is not invoked. Run with PEER_WRITE_CORPUS=1 after changing the
// frame codec.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("PEER_WRITE_CORPUS") == "" {
		t.Skip("set PEER_WRITE_CORPUS=1 to regenerate testdata/fuzz/FuzzPeerFrame")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzPeerFrame")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	framed := func(sess uint32, typ byte, payload []byte) []byte {
		var buf bytes.Buffer
		if err := writeFrame(&buf, sess, typ, payload); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	chal, _ := encodeDelivery(0, 3, wire.Message{Data: []byte{0xAB, 0x01}, Bits: 9})
	resp, _ := encodeDelivery(2, 0, wire.Message{})
	fwd, _ := encodeDelivery(1, 7, wire.Message{Data: []byte{0xFF}, Bits: 8})
	ex, _ := encodeExchange(1, 4, 5, true, wire.Message{Data: []byte{0x42}, Bits: 7})
	corpus := map[string][]byte{
		"valid-challenge":   framed(1, frameChallenge, chal),
		"valid-response":    framed(0, frameResponse, resp),
		"valid-forward":     framed(0xFFFFFFFF, frameForward, fwd),
		"valid-exchange":    framed(7, frameExchange, ex),
		"valid-decision":    framed(0x017B2276, frameDecision, encodeDecision(6, true)),
		"valid-hello":       framed(2, frameHello, []byte(`{"proto":2,"seed":7,"n":4,"nodes":[{"v":0,"neighbors":[1]}]}`)),
		"valid-error":       framed(3, frameError, []byte(`{"phase":"transport","round":1,"node":2,"message":"x"}`)),
		"valid-end":         framed(4, frameEnd, nil),
		"v1-hello":          append([]byte{0, 0, 0, 14, 0x01}, []byte(`{"version":1}`)...),
		"zero-length":       {0, 0, 0, 0},
		"sub-header-length": {0, 0, 0, 1, frameEnd},
		"oversized-claim":   {0xFF, 0xFF, 0xFF, 0xFF, 0x10},
		"truncated-body":    {0, 0, 1, 0, 0, 0, 0, 1, 0x10, 1, 2, 3},
		"hostile-bits":      {0, 0, 0, 17, 0, 0, 0, 1, 0x10, 0, 0, 0, 0, 0, 0, 0, 1, 0xFF, 0xFF, 0xFF, 0xFF},
		"trailing-garbage":  append(append([]byte{0, 0, 0, byte(5 + len(ex) + 1), 0, 0, 0, 9}, frameExchange), append(ex, 0xEE)...),
	}
	for name, data := range corpus {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
