package peer

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Fleet is a long-lived handle on a set of peer servers. It owns one
// persistent connection per peer, shared by every run: each run is one
// wire session, minted from a fleet-wide counter and multiplexed over
// the standing connections by the session id in every frame. A dead
// connection is redialed lazily on the next run that needs the peer;
// while a peer stays down, runs are placed on the remaining live peers,
// so a serving tier in front of the fleet degrades to structured errors
// for in-flight runs and recovers for subsequent ones without a restart.
type Fleet struct {
	addrs []string
	opts  Options
	peers []*fleetConn
	sess  atomic.Uint32

	mu     sync.Mutex
	closed bool
}

// NewFleet validates the configuration and builds a fleet handle without
// touching the network; connections open lazily at each run's Begin.
func NewFleet(addrs []string, opts Options) (*Fleet, error) {
	if len(addrs) == 0 {
		return nil, errors.New("peer: no peer addresses")
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	f := &Fleet{addrs: append([]string(nil), addrs...), opts: opts}
	for i, addr := range f.addrs {
		f.peers = append(f.peers, &fleetConn{addr: addr, idx: i, opts: opts})
	}
	return f, nil
}

// DialFleet builds a fleet handle and eagerly connects every peer, so a
// misconfigured or unreachable fleet fails at startup instead of on the
// first run. Connections that later die are redialed lazily.
func DialFleet(addrs []string, opts Options) (*Fleet, error) {
	f, err := NewFleet(addrs, opts)
	if err != nil {
		return nil, err
	}
	if err := f.Ready(); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// Ready ensures every peer has a live connection, redialing dead ones,
// and reports the unreachable remainder. A nil error means the whole
// fleet is reachable right now.
func (f *Fleet) Ready() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return errors.New("peer: fleet closed")
	}
	f.mu.Unlock()
	var bad []string
	for _, fc := range f.peers {
		if err := fc.ensure(); err != nil {
			bad = append(bad, fmt.Sprintf("%s (%v)", fc.addr, err))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("peer: unreachable peers: %s", strings.Join(bad, "; "))
	}
	return nil
}

// Addrs returns the fleet's peer addresses in placement order.
func (f *Fleet) Addrs() []string {
	return append([]string(nil), f.addrs...)
}

// NewRun mints a transport for one run over the fleet's connections.
// params is the opaque protocol parameter blob every peer's SpecBuilder
// will rebuild the Spec from (for dippeer fleets: a JSON dip.Request
// without edge lists). The returned transport serves exactly one run.
func (f *Fleet) NewRun(params []byte) *Transport {
	return &Transport{
		fleet:   f,
		params:  append([]byte(nil), params...),
		pending: make(map[uint64][]inFrame),
	}
}

// Close tears down every connection and joins their readers. Runs still
// in flight fail with transport errors.
func (f *Fleet) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	f.mu.Unlock()
	for _, fc := range f.peers {
		fc.close()
	}
	return nil
}

// PeerStats is one peer's gauge snapshot.
type PeerStats struct {
	Addr      string `json:"addr"`
	Connected bool   `json:"connected"`
	// SessionsOpen counts sessions currently running on the peer;
	// SessionsCompleted and SessionsFailed are cumulative outcomes.
	SessionsOpen      int64 `json:"sessions_open"`
	SessionsCompleted int64 `json:"sessions_completed"`
	SessionsFailed    int64 `json:"sessions_failed"`
	FramesSent        int64 `json:"frames_sent"`
	FramesReceived    int64 `json:"frames_received"`
	// FramesDropped counts outbound frames a LinkFaults policy swallowed.
	FramesDropped int64 `json:"frames_dropped,omitempty"`
	BytesSent     int64 `json:"bytes_sent"`
	BytesReceived int64 `json:"bytes_received"`
}

// FleetStats is a point-in-time snapshot of every peer's gauges.
type FleetStats struct {
	Peers []PeerStats `json:"peers"`
}

// Stats snapshots the fleet's per-peer gauges.
func (f *Fleet) Stats() FleetStats {
	st := FleetStats{Peers: make([]PeerStats, 0, len(f.peers))}
	for _, fc := range f.peers {
		fc.mu.Lock()
		connected := fc.conn != nil
		fc.mu.Unlock()
		st.Peers = append(st.Peers, PeerStats{
			Addr:              fc.addr,
			Connected:         connected,
			SessionsOpen:      fc.sessionsOpen.Load(),
			SessionsCompleted: fc.sessionsCompleted.Load(),
			SessionsFailed:    fc.sessionsFailed.Load(),
			FramesSent:        fc.framesOut.Load(),
			FramesReceived:    fc.framesIn.Load(),
			FramesDropped:     fc.framesDropped.Load(),
			BytesSent:         fc.bytesOut.Load(),
			BytesReceived:     fc.bytesIn.Load(),
		})
	}
	return st
}

// Dial builds a one-shot transport: a private single-run fleet over
// addrs that tears itself down at End. It keeps the "hand a transport to
// network.Run before the fleet is reachable" shape the simulator and the
// equivalence suites use — connections are not opened until Begin.
func Dial(addrs []string, params []byte, opts Options) (*Transport, error) {
	f, err := NewFleet(addrs, opts)
	if err != nil {
		return nil, err
	}
	t := f.NewRun(params)
	t.ownsFleet = true
	return t, nil
}

// sink routes one run's inbound frames: the run's shared inbox plus the
// run-local index of the connection the frames arrive on. done is closed
// when the run ends, so a reader never blocks forever delivering to an
// abandoned run.
type sink struct {
	ch   chan<- inFrame
	conn int
	done <-chan struct{}
}

// fleetConn is one peer's persistent connection state: the current
// connection (nil while the peer is down), the session→sink routing
// table its reader demuxes into, and the peer's gauges. gen increments
// on every successful dial so a stale teardown cannot kill a fresh
// connection.
type fleetConn struct {
	addr string
	idx  int
	opts Options

	// wmu serializes frame writes; it is separate from mu so a blocked
	// write never holds the routing lock.
	wmu sync.Mutex

	mu         sync.Mutex
	conn       net.Conn
	gen        int
	quit       chan struct{}
	readerDone chan struct{}
	sinks      map[uint32]*sink

	sessionsOpen      atomic.Int64
	sessionsCompleted atomic.Int64
	sessionsFailed    atomic.Int64
	framesOut         atomic.Int64
	framesIn          atomic.Int64
	framesDropped     atomic.Int64
	bytesOut          atomic.Int64
	bytesIn           atomic.Int64
}

// ensure returns with a live connection or a dial error. The dial runs
// outside the lock so gauge snapshots never wait on a slow connect; if
// two runs race, the loser's connection is discarded.
func (fc *fleetConn) ensure() error {
	fc.mu.Lock()
	if fc.conn != nil {
		fc.mu.Unlock()
		return nil
	}
	fc.mu.Unlock()
	conn, err := net.DialTimeout("tcp", fc.addr, fc.opts.DialTimeout)
	if err != nil {
		return err
	}
	fc.mu.Lock()
	if fc.conn != nil {
		fc.mu.Unlock()
		conn.Close()
		return nil
	}
	fc.conn = conn
	fc.gen++
	fc.quit = make(chan struct{})
	fc.readerDone = make(chan struct{})
	fc.sinks = make(map[uint32]*sink)
	gen, quit, done := fc.gen, fc.quit, fc.readerDone
	fc.mu.Unlock()
	go fc.reader(conn, gen, quit, done)
	return nil
}

// reader demuxes inbound frames to their runs' sinks by session id until
// the connection dies. Frames for unregistered sessions (late traffic
// after a run ended) are dropped.
func (fc *fleetConn) reader(conn net.Conn, gen int, quit, done chan struct{}) {
	defer close(done)
	br := bufio.NewReader(conn)
	for {
		id, typ, payload, err := readFrame(br)
		if err != nil {
			fc.teardown(gen, err)
			return
		}
		fc.framesIn.Add(1)
		fc.bytesIn.Add(int64(9 + len(payload)))
		fc.mu.Lock()
		s := fc.sinks[id]
		fc.mu.Unlock()
		if s == nil {
			continue
		}
		select {
		case s.ch <- inFrame{conn: s.conn, typ: typ, payload: payload}:
		case <-s.done:
		case <-quit:
			return
		}
	}
}

// teardown retires generation gen's connection: the socket closes, the
// reader quits, and every registered run learns its peer is gone via an
// error frame (delivered on its own goroutine, so a slow run never
// blocks the teardown).
func (fc *fleetConn) teardown(gen int, cause error) {
	fc.mu.Lock()
	if gen != fc.gen || fc.conn == nil {
		fc.mu.Unlock()
		return
	}
	conn, quit, sinks := fc.conn, fc.quit, fc.sinks
	fc.conn, fc.quit, fc.readerDone, fc.sinks = nil, nil, nil, nil
	fc.mu.Unlock()
	close(quit)
	conn.Close()
	err := fmt.Errorf("peer %s: %v", fc.addr, cause)
	for _, s := range sinks {
		go func(s *sink) {
			select {
			case s.ch <- inFrame{conn: s.conn, err: err}:
			case <-s.done:
			}
		}(s)
	}
}

// close tears down the current connection (if any) and joins its reader.
func (fc *fleetConn) close() {
	fc.mu.Lock()
	gen, done := fc.gen, fc.readerDone
	live := fc.conn != nil
	fc.mu.Unlock()
	if !live {
		return
	}
	fc.teardown(gen, errors.New("fleet closed"))
	if done != nil {
		<-done
	}
}

// register routes session id's inbound frames to s.
func (fc *fleetConn) register(id uint32, s *sink) error {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if fc.conn == nil {
		return fmt.Errorf("peer %s: not connected", fc.addr)
	}
	fc.sinks[id] = s
	return nil
}

// unregister stops routing session id; its late frames are dropped.
func (fc *fleetConn) unregister(id uint32) {
	fc.mu.Lock()
	if fc.sinks != nil {
		delete(fc.sinks, id)
	}
	fc.mu.Unlock()
}

// sendFrame writes one frame under the write lock and I/O deadline; a
// write failure retires the connection so the next run redials.
func (fc *fleetConn) sendFrame(sess uint32, typ byte, payload []byte) error {
	fc.mu.Lock()
	conn, gen := fc.conn, fc.gen
	fc.mu.Unlock()
	if conn == nil {
		return fmt.Errorf("peer %s: not connected", fc.addr)
	}
	// wmu serializes whole frames: each writeFrame is a single Write call,
	// so concurrent runs' frames never interleave on the shared socket.
	fc.wmu.Lock()
	conn.SetWriteDeadline(time.Now().Add(fc.opts.IOTimeout))
	err := writeFrame(conn, sess, typ, payload)
	fc.wmu.Unlock()
	if err != nil {
		fc.teardown(gen, fmt.Errorf("write: %w", err))
		return fmt.Errorf("peer %s write: %v", fc.addr, err)
	}
	fc.framesOut.Add(1)
	fc.bytesOut.Add(int64(9 + len(payload)))
	return nil
}
