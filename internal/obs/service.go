package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Gauge is an atomic instantaneous value (queue depth, in-flight count):
// unlike Counter it goes both ways.
type Gauge struct{ v int64 }

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { atomic.AddInt64(&g.v, n) }

// Set replaces the gauge's value.
func (g *Gauge) Set(n int64) { atomic.StoreInt64(&g.v, n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return atomic.LoadInt64(&g.v) }

// ServiceMeters is the metering surface of a request-serving process
// (cmd/dipserve): admission counters, load gauges, and per-protocol
// latency accumulators. The zero value is ready to use. All methods are
// safe for concurrent use from request handlers and workers.
type ServiceMeters struct {
	// Requests counts every admitted run request; Rejected counts requests
	// turned away at admission (queue full or draining); RateLimited
	// counts requests refused by the per-client quota (429); Failures
	// counts admitted requests whose run returned an error. All four are
	// in request units: a batch of k items moves them by k.
	Requests    Counter
	Rejected    Counter
	RateLimited Counter
	Failures    Counter
	// InFlight is the number of requests currently executing; QueueDepth
	// the number admitted but not yet picked up by a worker.
	InFlight   Gauge
	QueueDepth Gauge

	mu       sync.Mutex
	perProto map[string]*ProtocolMeter
}

// ProtocolMeter accumulates per-protocol request metrics.
type ProtocolMeter struct {
	Requests Counter
	Errors   Counter
	Latency  Timer
}

// Protocol returns the meter for name, creating it on first use.
func (m *ServiceMeters) Protocol(name string) *ProtocolMeter {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.perProto == nil {
		m.perProto = make(map[string]*ProtocolMeter)
	}
	p, ok := m.perProto[name]
	if !ok {
		p = &ProtocolMeter{}
		m.perProto[name] = p
	}
	return p
}

// ServiceMetrics is a JSON-able snapshot of a ServiceMeters.
type ServiceMetrics struct {
	Requests    int64                   `json:"requests"`
	Rejected    int64                   `json:"rejected"`
	RateLimited int64                   `json:"rate_limited"`
	Failures    int64                   `json:"failures"`
	InFlight    int64                   `json:"in_flight"`
	QueueDepth  int64                   `json:"queue_depth"`
	Protocols   []ProtocolMetricsRecord `json:"protocols,omitempty"`
}

// ProtocolMetricsRecord is the per-protocol slice of a snapshot.
type ProtocolMetricsRecord struct {
	Protocol string `json:"protocol"`
	Requests int64  `json:"requests"`
	Errors   int64  `json:"errors"`
	// LatencyMeanMS is total latency over completed requests, in
	// milliseconds (0 when none completed yet).
	LatencyMeanMS float64 `json:"latency_mean_ms"`
}

// SnapshotService returns the current values, protocols sorted by name.
func (m *ServiceMeters) SnapshotService() ServiceMetrics {
	s := ServiceMetrics{
		Requests:    m.Requests.Value(),
		Rejected:    m.Rejected.Value(),
		RateLimited: m.RateLimited.Value(),
		Failures:    m.Failures.Value(),
		InFlight:    m.InFlight.Value(),
		QueueDepth:  m.QueueDepth.Value(),
	}
	m.mu.Lock()
	names := make([]string, 0, len(m.perProto))
	for name := range m.perProto {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		p := m.perProto[name]
		rec := ProtocolMetricsRecord{
			Protocol: name,
			Requests: p.Requests.Value(),
			Errors:   p.Errors.Value(),
		}
		if n := p.Latency.Count(); n > 0 {
			rec.LatencyMeanMS = float64(p.Latency.Total()) / float64(n) / float64(time.Millisecond)
		}
		s.Protocols = append(s.Protocols, rec)
	}
	m.mu.Unlock()
	return s
}
