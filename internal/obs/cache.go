package obs

import (
	"sort"
	"sync"
)

// CacheMeter meters one named memo cache (the setup caches of the request
// path: graphs, graph artifacts, protocol instances, compiled scripts).
// Hits/Misses/Evictions are monotone event counters; Size and Capacity are
// gauges the owning cache keeps current, so a /metrics snapshot can report
// occupancy next to the hit ratio. Like the rest of this package, meters
// are process-global: the caches they describe are process-global too.
type CacheMeter struct {
	Hits      Counter
	Misses    Counter
	Evictions Counter
	Size      Gauge
	Capacity  Gauge
}

var (
	cacheMu sync.Mutex
	caches  map[string]*CacheMeter
)

// Cache returns the meter registered under name, creating it on first use.
// Callers keep the returned pointer; lookups after the first are only for
// snapshots.
func Cache(name string) *CacheMeter {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if caches == nil {
		caches = make(map[string]*CacheMeter)
	}
	m, ok := caches[name]
	if !ok {
		m = &CacheMeter{}
		caches[name] = m
	}
	return m
}

// CacheMetricsRecord is the snapshot of one named cache.
type CacheMetricsRecord struct {
	Name      string `json:"name"`
	Hits      int64  `json:"hits"`
	Misses    int64  `json:"misses"`
	Evictions int64  `json:"evictions"`
	Size      int64  `json:"size"`
	Capacity  int64  `json:"capacity"`
}

// SnapshotCaches returns the current values of every registered cache
// meter, sorted by name (stable output for /metrics).
func SnapshotCaches() []CacheMetricsRecord {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	names := make([]string, 0, len(caches))
	for name := range caches {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]CacheMetricsRecord, 0, len(names))
	for _, name := range names {
		m := caches[name]
		out = append(out, CacheMetricsRecord{
			Name:      name,
			Hits:      m.Hits.Value(),
			Misses:    m.Misses.Value(),
			Evictions: m.Evictions.Value(),
			Size:      m.Size.Value(),
			Capacity:  m.Capacity.Value(),
		})
	}
	return out
}
