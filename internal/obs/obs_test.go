package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndTimer(t *testing.T) {
	var c Counter
	var tm Timer
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Add(1)
				tm.Observe(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 800 {
		t.Fatalf("counter = %d, want 800", c.Value())
	}
	if tm.Count() != 800 || tm.Total() != 800*time.Millisecond {
		t.Fatalf("timer = %d events / %v", tm.Count(), tm.Total())
	}
}

func TestGlobalSnapshot(t *testing.T) {
	Reset()
	defer Reset()
	RecordEngineRun(2 * time.Millisecond)
	RecordEngineRun(3 * time.Millisecond)
	RecordTrial()
	m := Snapshot()
	if m.EngineRuns != 2 || m.EngineWallMS != 5 || m.TrialsRun != 1 {
		t.Fatalf("snapshot = %+v", m)
	}
}

// TestNilReporterIsSilent pins the no-guards-at-call-sites contract.
func TestNilReporterIsSilent(t *testing.T) {
	var r *Reporter
	r.SetLabel("x")
	r.StartCell(10)
	r.Tick()
	r.FinishCell()
}

func TestReporterProgressLine(t *testing.T) {
	var buf bytes.Buffer
	r := NewReporter(&buf)
	r.SetLabel("E1")
	r.StartCell(4)
	// Backdate the throttle so the very next Tick writes.
	r.mu.Lock()
	r.last = time.Now().Add(-time.Hour)
	r.start = time.Now().Add(-time.Second)
	r.mu.Unlock()
	r.Tick()
	out := buf.String()
	if !strings.Contains(out, "[E1] cell 1: 1/4 trials") {
		t.Fatalf("progress line = %q", out)
	}
	r.FinishCell()
	if !strings.HasSuffix(buf.String(), "\r") {
		t.Fatalf("finish did not clear the line: %q", buf.String())
	}
}

func TestReporterThrottles(t *testing.T) {
	var buf bytes.Buffer
	r := NewReporter(&buf)
	r.StartCell(1000)
	for i := 0; i < 100; i++ {
		r.Tick()
	}
	// All ticks land within the throttle window of StartCell, so at most
	// one line is written.
	if n := strings.Count(buf.String(), "trials"); n > 1 {
		t.Fatalf("throttle failed: %d progress lines", n)
	}
}
