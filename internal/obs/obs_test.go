package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndTimer(t *testing.T) {
	var c Counter
	var tm Timer
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Add(1)
				tm.Observe(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 800 {
		t.Fatalf("counter = %d, want 800", c.Value())
	}
	if tm.Count() != 800 || tm.Total() != 800*time.Millisecond {
		t.Fatalf("timer = %d events / %v", tm.Count(), tm.Total())
	}
}

func TestGlobalSnapshot(t *testing.T) {
	Reset()
	defer Reset()
	RecordEngineRun(2 * time.Millisecond)
	RecordEngineRun(3 * time.Millisecond)
	RecordTrial()
	m := Snapshot()
	if m.EngineRuns != 2 || m.EngineWallMS != 5 || m.TrialsRun != 1 {
		t.Fatalf("snapshot = %+v", m)
	}
}

// TestNilReporterIsSilent pins the no-guards-at-call-sites contract.
func TestNilReporterIsSilent(t *testing.T) {
	var r *Reporter
	r.SetLabel("x")
	r.StartCell(10)
	r.Tick()
	r.FinishCell()
}

func TestReporterProgressLine(t *testing.T) {
	var buf bytes.Buffer
	r := NewReporter(&buf)
	r.SetLabel("E1")
	r.StartCell(4)
	// Backdate the throttle so the very next Tick writes.
	r.mu.Lock()
	r.last = time.Now().Add(-time.Hour)
	r.start = time.Now().Add(-time.Second)
	r.mu.Unlock()
	r.Tick()
	out := buf.String()
	if !strings.Contains(out, "[E1] cell 1: 1/4 trials") {
		t.Fatalf("progress line = %q", out)
	}
	r.FinishCell()
	if !strings.HasSuffix(buf.String(), "\r") {
		t.Fatalf("finish did not clear the line: %q", buf.String())
	}
}

func TestReporterThrottles(t *testing.T) {
	var buf bytes.Buffer
	r := NewReporter(&buf)
	r.StartCell(1000)
	for i := 0; i < 100; i++ {
		r.Tick()
	}
	// All ticks land within the throttle window of StartCell, so at most
	// one line is written.
	if n := strings.Count(buf.String(), "trials"); n > 1 {
		t.Fatalf("throttle failed: %d progress lines", n)
	}
}

// fakeClock is a manually advanced clock for deterministic Reporter tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// newFakeReporter returns a Reporter on a fake clock plus the clock.
func newFakeReporter(buf *bytes.Buffer) (*Reporter, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	r := NewReporter(buf)
	r.now = clk.now
	return r, clk
}

// TestReporterThrottleInterval pins the 500ms write throttle exactly: a
// tick landing inside the interval is silent, one landing at or past the
// boundary writes, and the throttle window restarts from the write.
func TestReporterThrottleInterval(t *testing.T) {
	var buf bytes.Buffer
	r, clk := newFakeReporter(&buf)
	r.SetLabel("E1")
	r.StartCell(100)

	// The first tick after StartCell is minInterval past the zero `last`,
	// so it writes; ticks within the next 499ms stay silent.
	r.Tick()
	if n := strings.Count(buf.String(), "trials"); n != 1 {
		t.Fatalf("first tick: %d lines, want 1", n)
	}
	clk.advance(minInterval - time.Millisecond)
	r.Tick()
	if n := strings.Count(buf.String(), "trials"); n != 1 {
		t.Fatalf("tick inside throttle window wrote (lines=%d)", n)
	}
	clk.advance(time.Millisecond)
	r.Tick()
	if n := strings.Count(buf.String(), "trials"); n != 2 {
		t.Fatalf("tick at throttle boundary: %d lines, want 2", n)
	}
}

// TestReporterETAMath checks the extrapolation through the public
// interface: 25 trials in 10s with 75 left must read ETA 30s.
func TestReporterETAMath(t *testing.T) {
	var buf bytes.Buffer
	r, clk := newFakeReporter(&buf)
	r.SetLabel("E2")
	r.StartCell(100)
	for i := 0; i < 24; i++ {
		r.Tick()
	}
	buf.Reset()
	clk.advance(10 * time.Second)
	r.Tick() // 25th trial, 10s elapsed
	if got := buf.String(); !strings.Contains(got, "(ETA 30s)") {
		t.Fatalf("progress line = %q, want ETA 30s", got)
	}
}

func TestETAString(t *testing.T) {
	cases := []struct {
		elapsed time.Duration
		done    int
		total   int
		want    string
	}{
		{0, 0, 10, "?"},           // nothing done yet
		{time.Second, 0, 10, "?"}, // guard against division by zero
		{0, 5, 10, "?"},           // no elapsed time to extrapolate from
		{10 * time.Second, 25, 100, "30s"},
		{time.Second, 10, 10, "0s"},              // finished cell
		{1500 * time.Millisecond, 3, 4, "500ms"}, // sub-second rounding
	}
	for _, c := range cases {
		if got := etaString(c.elapsed, c.done, c.total); got != c.want {
			t.Errorf("etaString(%v, %d, %d) = %q, want %q", c.elapsed, c.done, c.total, got, c.want)
		}
	}
}

// TestMeterResetBetweenRuns pins the contract batch drivers rely on:
// Reset zeroes every meter — including the delivery meters the engine
// publishes per run — so consecutive measurement windows don't bleed
// into each other.
func TestMeterResetBetweenRuns(t *testing.T) {
	Reset()
	defer Reset()
	RecordEngineRun(4 * time.Millisecond)
	RecordTrial()
	RecordDeliveries(12, 480)
	RecordDeliveries(3, 99)
	m := Snapshot()
	if m.Deliveries != 15 || m.DeliveredBits != 579 {
		t.Fatalf("delivery meters = %d/%d, want 15/579", m.Deliveries, m.DeliveredBits)
	}
	Reset()
	if m := Snapshot(); m != (Metrics{}) {
		t.Fatalf("snapshot after Reset = %+v, want zero", m)
	}
	// A second run's meters start from zero, not from the first run's.
	RecordDeliveries(7, 70)
	if m := Snapshot(); m.Deliveries != 7 || m.DeliveredBits != 70 {
		t.Fatalf("post-reset meters = %d/%d, want 7/70", m.Deliveries, m.DeliveredBits)
	}
}
