// Package obs is the observability layer of the engine and the experiment
// harness: cheap atomic counters and wall-time accumulators that the hot
// paths update unconditionally, plus a throttled progress reporter for
// long command-line runs.
//
// The counters are process-global by design — the engine is a library, so
// the metering has to live somewhere callers cannot forget to thread
// through. They never influence results: all experiment randomness is
// derived from seeds, so metering stays strictly observational.
package obs

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic event counter.
type Counter struct{ v int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { atomic.AddInt64(&c.v, n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return atomic.LoadInt64(&c.v) }

// Timer accumulates wall-clock durations of repeated events.
type Timer struct {
	ns int64
	n  int64
}

// Observe adds one event of duration d.
func (t *Timer) Observe(d time.Duration) {
	atomic.AddInt64(&t.ns, int64(d))
	atomic.AddInt64(&t.n, 1)
}

// Total returns the accumulated wall time.
func (t *Timer) Total() time.Duration { return time.Duration(atomic.LoadInt64(&t.ns)) }

// Count returns the number of observed events.
func (t *Timer) Count() int64 { return atomic.LoadInt64(&t.n) }

// Process-global metrics, updated by the engine and the trial harness.
var (
	// engineRuns times every completed network.Run call.
	engineRuns Timer
	// trialsRun counts trials executed by the experiments harness.
	trialsRun Counter
	// deliveries counts message deliveries through the engine's delivery
	// funnel; deliveredBits accumulates their pre-corruption bit lengths.
	// Both are published once per completed run from the funnel's charge
	// totals (network.runState.finish), not per delivery, so the hot path
	// carries no atomics.
	deliveries    Counter
	deliveredBits Counter
)

// RecordEngineRun is called by network.Run on every completed run.
func RecordEngineRun(d time.Duration) { engineRuns.Observe(d) }

// RecordTrial is called by the trial harness once per executed trial.
func RecordTrial() { trialsRun.Add(1) }

// RecordDeliveries is called by the engine once per completed run with the
// run's total delivery count and delivered (honest, pre-corruption) bits
// across all three planes.
func RecordDeliveries(count, bits int64) {
	deliveries.Add(count)
	deliveredBits.Add(bits)
}

// Metrics is a snapshot of the process-global meters, embeddable in
// machine-readable result files.
type Metrics struct {
	EngineRuns    int64 `json:"engine_runs"`
	EngineWallMS  int64 `json:"engine_wall_ms"`
	TrialsRun     int64 `json:"trials_run"`
	Deliveries    int64 `json:"deliveries"`
	DeliveredBits int64 `json:"delivered_bits"`
}

// Snapshot returns the current global metrics.
func Snapshot() Metrics {
	return Metrics{
		EngineRuns:    engineRuns.Count(),
		EngineWallMS:  engineRuns.Total().Milliseconds(),
		TrialsRun:     trialsRun.Value(),
		Deliveries:    deliveries.Value(),
		DeliveredBits: deliveredBits.Value(),
	}
}

// Reset zeroes the global meters (tests only).
func Reset() {
	atomic.StoreInt64(&engineRuns.ns, 0)
	atomic.StoreInt64(&engineRuns.n, 0)
	atomic.StoreInt64(&trialsRun.v, 0)
	atomic.StoreInt64(&deliveries.v, 0)
	atomic.StoreInt64(&deliveredBits.v, 0)
}

// Reporter prints throttled progress lines for batch work to a writer
// (stderr in the CLIs): label, trials completed in the current cell, and
// an ETA extrapolated from the cell's own throughput. A nil *Reporter is
// valid and silent, so call sites need no guards. All methods are safe
// for concurrent use; Tick is called from worker goroutines.
type Reporter struct {
	mu    sync.Mutex
	w     io.Writer
	now   func() time.Time // injectable clock; time.Now outside tests
	label string
	cell  int
	total int
	done  int
	start time.Time
	last  time.Time
	wrote bool
}

// NewReporter returns a Reporter writing to w.
func NewReporter(w io.Writer) *Reporter {
	return &Reporter{w: w, now: time.Now}
}

// minInterval throttles progress writes.
const minInterval = 500 * time.Millisecond

// SetLabel names the work that follows (e.g. an experiment ID) and
// restarts the per-label cell counter.
func (r *Reporter) SetLabel(label string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.label = label
	r.cell = 0
	r.mu.Unlock()
}

// StartCell begins a batch of total trials under the current label.
func (r *Reporter) StartCell(total int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.cell++
	r.total = total
	r.done = 0
	r.start = r.now()
	r.last = time.Time{}
	r.mu.Unlock()
}

// Tick records one completed trial and, at most twice a second, rewrites
// the progress line.
func (r *Reporter) Tick() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.done++
	now := r.now()
	if now.Sub(r.last) < minInterval || r.total <= 0 {
		return
	}
	r.last = now
	fmt.Fprintf(r.w, "\r[%s] cell %d: %d/%d trials (ETA %s)   ",
		r.label, r.cell, r.done, r.total, etaString(now.Sub(r.start), r.done, r.total))
	r.wrote = true
}

// etaString extrapolates the remaining wall time of a cell from its own
// throughput so far: elapsed/done per trial times the trials left, rounded
// to 100ms. "?" when there is no throughput to extrapolate from.
func etaString(elapsed time.Duration, done, total int) string {
	if done <= 0 || elapsed <= 0 {
		return "?"
	}
	rem := time.Duration(float64(elapsed) / float64(done) * float64(total-done))
	return rem.Round(100 * time.Millisecond).String()
}

// FinishCell clears the progress line of the finished cell, if any was
// written.
func (r *Reporter) FinishCell() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.wrote {
		fmt.Fprintf(r.w, "\r%*s\r", 60, "")
		r.wrote = false
	}
}
