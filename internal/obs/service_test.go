package obs

import (
	"sync"
	"testing"
	"time"
)

func TestGauge(t *testing.T) {
	var g Gauge
	g.Add(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Fatalf("value = %d, want 2", got)
	}
	g.Set(7)
	if got := g.Value(); got != 7 {
		t.Fatalf("after Set: %d", got)
	}
}

func TestServiceMetersSnapshot(t *testing.T) {
	var m ServiceMeters
	m.Requests.Add(5)
	m.Rejected.Add(1)
	m.InFlight.Add(2)
	p := m.Protocol("sym-dmam")
	p.Requests.Add(4)
	p.Latency.Observe(10 * time.Millisecond)
	p.Latency.Observe(30 * time.Millisecond)
	m.Protocol("gni-damam").Errors.Add(1)

	s := m.SnapshotService()
	if s.Requests != 5 || s.Rejected != 1 || s.InFlight != 2 {
		t.Fatalf("snapshot counters: %+v", s)
	}
	if len(s.Protocols) != 2 {
		t.Fatalf("protocols: %+v", s.Protocols)
	}
	// Sorted by name: gni-damam before sym-dmam.
	if s.Protocols[0].Protocol != "gni-damam" || s.Protocols[1].Protocol != "sym-dmam" {
		t.Fatalf("protocol order: %+v", s.Protocols)
	}
	if got := s.Protocols[1].LatencyMeanMS; got < 19 || got > 21 {
		t.Fatalf("mean latency = %v, want ~20", got)
	}
	// Same name returns the same meter.
	if m.Protocol("sym-dmam") != p {
		t.Fatal("Protocol not idempotent")
	}
}

func TestServiceMetersConcurrent(t *testing.T) {
	var m ServiceMeters
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				m.Requests.Add(1)
				m.InFlight.Add(1)
				m.Protocol("sym-dam").Latency.Observe(time.Microsecond)
				m.InFlight.Add(-1)
			}
		}()
	}
	wg.Wait()
	s := m.SnapshotService()
	if s.Requests != 800 || s.InFlight != 0 {
		t.Fatalf("after storm: %+v", s)
	}
	if s.Protocols[0].Requests != 0 || m.Protocol("sym-dam").Latency.Count() != 800 {
		t.Fatalf("per-proto: %+v", s.Protocols)
	}
}
