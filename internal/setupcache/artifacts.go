package setupcache

import (
	"sync"

	"dip/internal/graph"
	"dip/internal/perm"
	"dip/internal/spantree"
)

// Artifacts is the memoized seed-independent bundle of one labeled graph:
// the nontrivial automorphism (or the memo that none exists) and the
// BFS spanning trees by root. These are pure functions of the graph's
// content — FindNontrivialAutomorphism scans vertices in order,
// spantree.Compute is deterministic BFS — so a cached artifact is exactly
// what the cold path would recompute. For the load-test workload the
// automorphism search alone was ~40% of every request's CPU; amortizing
// it across requests on the same instance is the single largest win of
// this package.
//
// The bundle computes its fields lazily against its own verified snapshot
// of the graph, so a caller mutating its graph after the lookup cannot
// corrupt what later requests read.
type Artifacts struct {
	g *graph.Graph // private snapshot, verified against the caller's graph

	autoOnce sync.Once
	auto     perm.Perm // nil when the graph is rigid

	spanMu sync.Mutex
	spans  map[int][]spantree.Advice
}

// artifactsCache holds one Artifacts per distinct labeled graph recently
// seen by any prover. Entries are keyed by (n, content digest) and
// verified by full equality against the snapshot.
var artifactsCache = New("artifacts", 128)

// ForGraph returns the artifact bundle of g, creating (with a defensive
// snapshot of g) on first sight.
func ForGraph(g *graph.Graph) *Artifacts {
	key := Key{Kind: "artifacts", A: int64(g.N()), Digest: g.ContentHash()}
	v, _ := artifactsCache.Do(key,
		func(v any) bool { return v.(*Artifacts).g.Equal(g) },
		func() (any, error) { return &Artifacts{g: g.Clone()}, nil },
	)
	return v.(*Artifacts)
}

// Automorphism returns a copy of the graph's nontrivial automorphism, or
// nil if the graph is rigid; the search runs once per cached graph. The
// copy keeps callers (which embed the permutation in protocol state) from
// aliasing the shared memo.
func (a *Artifacts) Automorphism() perm.Perm {
	a.autoOnce.Do(func() {
		a.auto = graph.FindNontrivialAutomorphism(a.g)
	})
	if a.auto == nil {
		return nil
	}
	out := make(perm.Perm, len(a.auto))
	copy(out, a.auto)
	return out
}

// SpanTree returns a copy of the BFS spanning-tree advice rooted at root,
// computing it once per (cached graph, root). It returns the same error
// spantree.Compute would (disconnected graphs).
func (a *Artifacts) SpanTree(root int) ([]spantree.Advice, error) {
	a.spanMu.Lock()
	adv, ok := a.spans[root]
	if !ok {
		var err error
		adv, err = spantree.Compute(a.g, root)
		if err != nil {
			a.spanMu.Unlock()
			return nil, err
		}
		if a.spans == nil {
			a.spans = make(map[int][]spantree.Advice)
		}
		a.spans[root] = adv
	}
	a.spanMu.Unlock()
	out := make([]spantree.Advice, len(adv))
	copy(out, adv)
	return out, nil
}

// ResetAll drops every entry of every setup cache in this package (tests
// and cold-path baselines; the root package re-exports it together with
// its own caches' reset).
func ResetAll() {
	artifactsCache.Reset()
}
