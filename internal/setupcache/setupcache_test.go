package setupcache

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"dip/internal/graph"
)

func TestDoCachesAndVerifies(t *testing.T) {
	c := New("test-basic", 16)
	key := Key{Kind: "k", A: 1}
	builds := 0
	build := func() (any, error) { builds++; return builds, nil }

	v, err := c.Do(key, nil, build)
	if err != nil || v.(int) != 1 {
		t.Fatalf("first Do: %v %v", v, err)
	}
	v, _ = c.Do(key, nil, build)
	if v.(int) != 1 || builds != 1 {
		t.Fatalf("second Do rebuilt: v=%v builds=%d", v, builds)
	}

	// A rejecting verifier (digest collision) forces a rebuild but serves
	// the fresh value uncached, leaving the incumbent in place.
	v, _ = c.Do(key, func(any) bool { return false }, build)
	if v.(int) != 2 || builds != 2 {
		t.Fatalf("collision path: v=%v builds=%d", v, builds)
	}
	v, _ = c.Do(key, nil, build)
	if v.(int) != 1 {
		t.Fatalf("incumbent evicted by collision: %v", v)
	}
}

func TestDoBuildErrorNotCached(t *testing.T) {
	c := New("test-err", 16)
	boom := errors.New("boom")
	if _, err := c.Do(Key{Kind: "k"}, nil, func() (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if c.Len() != 0 {
		t.Fatalf("error cached: len %d", c.Len())
	}
	v, err := c.Do(Key{Kind: "k"}, nil, func() (any, error) { return "ok", nil })
	if err != nil || v != "ok" {
		t.Fatalf("recovery: %v %v", v, err)
	}
}

func TestEvictionBounded(t *testing.T) {
	const capacity = 16
	c := New("test-evict", capacity)
	for i := 0; i < capacity*4; i++ {
		k := Key{Kind: "k", A: int64(i)}
		if _, err := c.Do(k, nil, func() (any, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.Len(); n > capacity {
		t.Fatalf("cache grew to %d entries, capacity %d", n, capacity)
	}
}

func TestDoConcurrent(t *testing.T) {
	c := New("test-conc", 64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := Key{Kind: "k", A: int64(i % 10)}
				v, err := c.Do(k, nil, func() (any, error) { return k.A, nil })
				if err != nil || v.(int64) != k.A {
					t.Errorf("worker %d: %v %v", w, v, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestForGraphSharesAndVerifies(t *testing.T) {
	ResetAll()
	g := graph.Cycle(8)
	a1 := ForGraph(g)
	a2 := ForGraph(graph.Cycle(8)) // equal content, distinct object
	if a1 != a2 {
		t.Fatal("equal graphs got distinct artifact bundles")
	}
	if a1.g == g {
		t.Fatal("artifact aliases the caller's graph")
	}

	rho := a1.Automorphism()
	if rho == nil {
		t.Fatal("cycle reported rigid")
	}
	rho[0] = -1 // mutate the returned copy
	if again := a1.Automorphism(); again[0] == -1 {
		t.Fatal("returned automorphism aliases the memo")
	}

	adv, err := a1.SpanTree(3)
	if err != nil {
		t.Fatal(err)
	}
	adv[0].Parent = -99
	again, _ := a1.SpanTree(3)
	if again[0].Parent == -99 {
		t.Fatal("returned span tree aliases the memo")
	}

	// A different labeled graph must not share the bundle.
	other := graph.Cycle(8)
	other.AddEdge(0, 4)
	if ForGraph(other) == a1 {
		t.Fatal("different graphs share a bundle")
	}
}

func TestForGraphConcurrent(t *testing.T) {
	ResetAll()
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				n := 6 + (i%3)*2
				art := ForGraph(graph.Cycle(n))
				if rho := art.Automorphism(); rho == nil {
					errCh <- fmt.Errorf("cycle n=%d reported rigid", n)
					return
				}
				if _, err := art.SpanTree(i % n); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}
