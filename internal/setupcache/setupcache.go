// Package setupcache memoizes the seed-independent (and, for keyed
// variants, seed-keyed) setup work of the request path: generated graphs,
// per-graph artifacts (automorphisms, spanning trees), and constructed
// protocol instances. Before this layer existed every service request
// rebuilt the same instance from scratch — for the load-test workload the
// automorphism search alone was ~40% of each request's CPU.
//
// The design rules, in priority order:
//
//  1. Correctness over hit rate. Digest-keyed entries carry a verifier:
//     a candidate whose verifier rejects (a 64-bit collision, or a caller
//     that mutated a graph after caching) is treated as a miss and the
//     value is rebuilt — a collision costs a rebuild, never a wrong
//     answer. Everything cached is a deterministic function of its key
//     and verified content, so cached and cold paths are bit-identical by
//     construction (asserted end-to-end by TestCachedRunsByteIdentical in
//     the root package).
//  2. Contention-free lookups. Each cache is sharded by key hash; a
//     lookup takes one shard mutex for a map read. Builds run outside
//     the lock (an automorphism search can take milliseconds) and
//     re-check before inserting, so concurrent misses for one key build
//     twice but cache once.
//  3. Bounded. Each cache holds at most its capacity, evicting in FIFO
//     order per shard, and meters hits/misses/evictions/size through
//     internal/obs so cmd/dipserve can expose them on /metrics.
package setupcache

import (
	"sync"

	"dip/internal/obs"
)

// Key identifies one cached value: a kind tag, up to four integer
// parameters (sizes, seeds, repetition counts — unused ones stay zero),
// and a content digest for values keyed by graph content. Keys are
// comparable and cheap to build on the hot path.
type Key struct {
	Kind   string
	A      int64
	B      int64
	C      int64
	D      int64
	Digest uint64
}

const fnvPrime = 1099511628211

func (k Key) hash() uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(k.Kind); i++ {
		h ^= uint64(k.Kind[i])
		h *= fnvPrime
	}
	for _, x := range [...]uint64{uint64(k.A), uint64(k.B), uint64(k.C), uint64(k.D), k.Digest} {
		h ^= x
		h *= fnvPrime
	}
	return h
}

// cacheShards is the lock-striping factor (a power of two). The caches are
// read-mostly once warm, so a modest factor suffices to keep shard mutexes
// uncontended next to the millisecond-scale runs between lookups.
const cacheShards = 8

type cacheShard struct {
	mu sync.Mutex
	m  map[Key]any
	// order is the FIFO eviction ring of this shard's keys, oldest first.
	order []Key
}

// Cache is one named, sharded, bounded memo table.
type Cache struct {
	meter  *obs.CacheMeter
	perCap int
	shards [cacheShards]cacheShard
}

// New returns a cache registered under name holding at most capacity
// entries (rounded up to one per shard).
func New(name string, capacity int) *Cache {
	perCap := capacity / cacheShards
	if perCap < 1 {
		perCap = 1
	}
	c := &Cache{meter: obs.Cache(name), perCap: perCap}
	c.meter.Capacity.Set(int64(perCap * cacheShards))
	return c
}

// Do returns the value cached under key, building and caching it on a
// miss. verify, when non-nil, must confirm a candidate actually matches
// the caller's inputs (digest keys are not injective); a rejected
// candidate is rebuilt and the cached entry left in place. build errors
// are returned without caching.
func (c *Cache) Do(key Key, verify func(v any) bool, build func() (any, error)) (any, error) {
	sh := &c.shards[key.hash()&(cacheShards-1)]
	sh.mu.Lock()
	v, ok := sh.m[key]
	sh.mu.Unlock()
	if ok && (verify == nil || verify(v)) {
		c.meter.Hits.Add(1)
		return v, nil
	}
	c.meter.Misses.Add(1)
	built, err := build()
	if err != nil {
		return nil, err
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if cur, ok := sh.m[key]; ok {
		// Raced with another builder, or a verified collision holds the
		// slot: prefer the incumbent when it matches (bounding memory),
		// otherwise serve our build uncached.
		if verify == nil || verify(cur) {
			return cur, nil
		}
		return built, nil
	}
	if sh.m == nil {
		sh.m = make(map[Key]any, c.perCap)
	}
	if len(sh.m) >= c.perCap {
		oldest := sh.order[0]
		sh.order = sh.order[1:]
		delete(sh.m, oldest)
		c.meter.Evictions.Add(1)
		c.meter.Size.Add(-1)
	}
	sh.m[key] = built
	sh.order = append(sh.order, key)
	c.meter.Size.Add(1)
	return built, nil
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	total := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		total += len(sh.m)
		sh.mu.Unlock()
	}
	return total
}

// Reset drops every entry (tests and cold-path baselines).
func (c *Cache) Reset() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		removed := len(sh.m)
		sh.m = nil
		sh.order = nil
		sh.mu.Unlock()
		c.meter.Size.Add(-int64(removed))
	}
}
