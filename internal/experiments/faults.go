package experiments

import (
	"fmt"
	"math/rand"
	"runtime"

	"dip/internal/core"
	"dip/internal/faults"
	"dip/internal/graph"
	"dip/internal/network"
	"dip/internal/perm"
	"dip/internal/wire"
)

// faultTarget is one protocol wired into the fault matrix.
type faultTarget struct {
	name   string
	spec   func() *network.Spec
	g      *graph.Graph
	inputs []wire.Message
	honest func() network.Prover
	// merlinRounds gates the replay fault (needs ≥ 2 Merlin rounds to
	// replay anything but a pass-through).
	merlinRounds int
	// perNodeAdvice gates nodeswap: shifting deliveries by one node only
	// bites when per-node messages differ.
	perNodeAdvice bool
	// exchangeReadWidth, when positive, narrows the exchange-plane
	// equivocate cell to the first exchangeReadWidth bits of each message
	// (faults.EquivocateWithin). A protocol whose decide consumes only a
	// subset of each neighbor copy (dsym-dam reads the echo, tree advice,
	// and *children's* hash sums) would let an unconstrained equivocated
	// bit land in don't-care positions at a non-negligible rate; limiting
	// the flip to a prefix every receiver provably compares (dsym-dam's
	// leading echo field) makes "detected below 1/3" a property the
	// protocol actually claims. Zero means the whole message is read and
	// the generic injector applies.
	exchangeReadWidth int
	// anchor, when non-nil, runs the protocol's no-instance soundness
	// anchor (cheating prover, no injected fault) for one trial.
	anchor NetTrial
}

// faultMatrixTrials is the quick-mode per-cell trial count. 40 is the
// smallest round count whose Wilson upper bound can certify < 1/3: even a
// few stray accepts keep the interval below the gate (0/40 → hi ≈ 0.088),
// while the 6-trial quick default of other experiments cannot (0/6 → hi ≈
// 0.39 > 1/3, a gate violation with zero observed accepts).
const faultMatrixTrials = 40

// proverPlaneFaults lists (class, intensity) pairs injected on the
// prover→node plane for every protocol; replay and nodeswap are appended
// per target when applicable.
var proverPlaneFaults = []struct {
	class     string
	intensity float64
}{
	{"bitflip", 0.25},
	{"bitflip", 1},
	{"truncate", 1},
	{"drop", 1},
	{"equivocate", 1},
}

// exchangePlaneFaults lists the node→node plane injections. The exchange
// plane only carries copies: bitflip breaks the broadcast-consistency
// comparisons and equivocate is the targeted version of the same cheat;
// the blunter classes (drop/truncate) add nothing the prover plane does
// not already cover, and replaying across rounds with different formats
// reduces to bitflip-like garbage.
var exchangePlaneFaults = []struct {
	class     string
	intensity float64
}{
	{"bitflip", 1},
	{"equivocate", 1},
}

// RunFaultMatrix sweeps protocols × fault classes × intensities and
// estimates the acceptance probability of each cell with the trial
// harness: yes-instance honest runs corrupted in flight (the fault must be
// *detected*: acceptance below the soundness bound), plus uninjected
// no-instance anchors (plain soundness). The output is a pure function of
// (Seed, Quick, Trials): byte-identical JSON at any Parallel/GOMAXPROCS.
func RunFaultMatrix(cfg Config) (*FaultResultsFile, *Table, error) {
	// Fault cells carry their own record format; keep them out of any
	// attached dip-bench recorder.
	cfg.Recorder = nil
	trials := cfg.TrialCount(DefaultTrials, faultMatrixTrials)

	targets, err := faultTargets(cfg)
	if err != nil {
		return nil, nil, err
	}

	file := &FaultResultsFile{
		Schema:         FaultSchema,
		Tool:           "dipbench",
		Seed:           cfg.Seed,
		Quick:          cfg.Quick,
		TrialsOverride: cfg.Trials,
		GoMaxProcs:     runtime.GOMAXPROCS(0),
	}
	table := &Table{
		ID:      "E12",
		Title:   "Soundness under injected faults (fault matrix)",
		Columns: []string{"protocol", "fault", "plane", "intensity", "instance", "acceptance", "gate<1/3"},
		Notes: []string{
			"yes rows: honest prover on a yes-instance, messages corrupted in flight — the fault must be detected",
			"no rows: cheating prover on a no-instance, no injection — the plain soundness anchor",
			fmt.Sprintf("gate: 95%% Wilson upper bound of the acceptance rate below 1/3 (%d trials/cell)", trials),
			"fault schedules are seed-derived (internal/faults): identical under both engines and any worker count",
			"dsym-dam's exchange-plane equivocate is width-limited to the echo prefix every receiver compares: its decide reads only part of each neighbor copy, so an unconstrained flip could land in don't-care positions",
		},
	}

	salt := int64(12000)
	addCell := func(c FaultCell, trial NetTrial) error {
		c.Salt = salt
		salt++
		st, err := RunTrials(cfg, c.Salt, trials, trial)
		if err != nil {
			return fmt.Errorf("fault cell %s/%s/%s: %w", c.Protocol, c.Fault, c.Plane, err)
		}
		est := st.Estimate()
		c.Trials = st.Trials
		c.Accepts = st.Accepts
		c.Estimate = intervalOf(est)
		c.Gate = c.Estimate.Hi < FaultBound
		file.Cells = append(file.Cells, c)
		plane := c.Plane
		if plane == "" {
			plane = "-"
		}
		intensity := "-"
		if c.Intensity > 0 {
			intensity = fmt.Sprintf("%.2f", c.Intensity)
		}
		table.AddRow(c.Protocol, c.Fault, plane, intensity, c.Instance, est.String(), fmt.Sprint(c.Gate))
		return nil
	}

	for _, tgt := range targets {
		if tgt.anchor != nil {
			cell := FaultCell{Protocol: tgt.name, Fault: "none", Instance: "no"}
			if err := addCell(cell, tgt.anchor); err != nil {
				return nil, nil, err
			}
		}
		rows := proverPlaneFaults
		if tgt.perNodeAdvice {
			rows = append(rows, struct {
				class     string
				intensity float64
			}{"nodeswap", 1})
		}
		if tgt.merlinRounds >= 2 {
			rows = append(rows, struct {
				class     string
				intensity float64
			}{"replay", 1})
		}
		for _, row := range rows {
			cell := FaultCell{Protocol: tgt.name, Fault: row.class,
				Plane: string(faults.PlaneProver), Intensity: row.intensity, Instance: "yes"}
			if err := addCell(cell, faultTrial(tgt, row.class, row.intensity, faults.PlaneProver)); err != nil {
				return nil, nil, err
			}
		}
		for _, row := range exchangePlaneFaults {
			cell := FaultCell{Protocol: tgt.name, Fault: row.class,
				Plane: string(faults.PlaneExchange), Intensity: row.intensity, Instance: "yes"}
			if err := addCell(cell, faultTrial(tgt, row.class, row.intensity, faults.PlaneExchange)); err != nil {
				return nil, nil, err
			}
		}
	}
	return file, table, nil
}

// E12FaultMatrix is the Runner wrapper around RunFaultMatrix: the table
// goes into EXPERIMENTS.md like any other experiment; the machine-readable
// cells are only emitted by cmd/dipbench -faults.
func E12FaultMatrix(cfg Config) (*Table, error) {
	_, table, err := RunFaultMatrix(cfg)
	return table, err
}

// faultTrial builds the NetTrial for one matrix cell: an honest
// yes-instance run with a fresh injector wired to the chosen plane. All
// randomness — the engine seed and the fault schedule alike — derives
// from the trial rng, so the cell is reproducible at any worker count.
func faultTrial(tgt faultTarget, class string, intensity float64, plane faults.Plane) NetTrial {
	return func(_ int, rng *rand.Rand) (*network.Result, error) {
		c, ok := faults.ByName(class)
		if !ok {
			return nil, fmt.Errorf("unknown fault class %q", class)
		}
		inj := c.New()
		if class == "equivocate" && plane == faults.PlaneExchange && tgt.exchangeReadWidth > 0 {
			inj = faults.EquivocateWithin(tgt.exchangeReadWidth)
		}
		if intensity < 1 {
			inj = faults.WithProbability(intensity, inj)
		}
		runSeed := rng.Int63()
		opts := network.Options{Seed: runSeed}
		n := tgt.g.N()
		switch plane {
		case faults.PlaneProver:
			opts.Corrupt = faults.Corruptor(runSeed, n, inj)
		case faults.PlaneExchange:
			opts.CorruptExchange = faults.ExchangeCorruptor(runSeed, n, inj)
		}
		return network.Run(tgt.spec(), tgt.g, tgt.inputs, tgt.honest(), opts)
	}
}

// faultTargets builds the protocol instances under test. The three cheap
// Symmetry-family protocols always run; the GNI workhorse joins at full
// size only (its optimal-cheater anchor accepts at a visibly nonzero rate,
// so certifying < 1/3 needs full trial counts — and its runs dominate the
// matrix's cost).
func faultTargets(cfg Config) ([]faultTarget, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 12))
	base, err := graph.RandomAsymmetricConnected(6, rng)
	if err != nil {
		return nil, err
	}
	sym := graph.Doubled(base, 0)
	n := sym.N()
	asym, err := graph.RandomAsymmetricConnected(n, rng)
	if err != nil {
		return nil, err
	}

	dmam, err := core.NewSymDMAM(n, cfg.Seed)
	if err != nil {
		return nil, err
	}
	dam, err := core.NewSymDAM(n, cfg.Seed)
	if err != nil {
		return nil, err
	}
	dsym, err := core.NewDSymDAM(6, 1, cfg.Seed)
	if err != nil {
		return nil, err
	}
	dsymG := graph.DSymGraph(graph.ConnectedGNP(6, 0.5, rng), 1)

	targets := []faultTarget{
		{
			name: "sym-dmam", spec: dmam.Spec, g: sym, honest: dmam.HonestProver,
			merlinRounds: 2, perNodeAdvice: true,
			anchor: func(_ int, rng *rand.Rand) (*network.Result, error) {
				return dmam.Run(asym, dmam.RandomMappingProver(rng), rng.Int63())
			},
		},
		{
			name: "sym-dam", spec: dam.Spec, g: sym, honest: dam.HonestProver,
			merlinRounds: 1, perNodeAdvice: true,
			anchor: func(_ int, rng *rand.Rand) (*network.Result, error) {
				rho := perm.RandomNonIdentity(n, rng)
				return dam.Run(asym, dam.ProverWithMapping(rho, rho.Moved()), rng.Int63())
			},
		},
		{
			name: "dsym-dam", spec: dsym.Spec, g: dsymG, honest: dsym.HonestProver,
			merlinRounds: 1, perNodeAdvice: true,
			exchangeReadWidth: wire.WidthForBig(dsym.P()),
		},
	}

	if !cfg.Quick {
		const gniN, gniK = 6, 32
		gniYes, err := core.NewGNIYesInstance(gniN, rng)
		if err != nil {
			return nil, err
		}
		gniNo, err := core.NewGNINoInstance(gniN, rng)
		if err != nil {
			return nil, err
		}
		damam, err := core.NewGNIDAMAM(gniN, gniK, cfg.Seed)
		if err != nil {
			return nil, err
		}
		targets = append(targets, faultTarget{
			name: "gni-damam", spec: damam.Spec, g: gniYes.G0,
			inputs: core.EncodeGNIInputs(gniYes.G1), honest: damam.HonestProver,
			merlinRounds: 2, perNodeAdvice: true,
			anchor: func(_ int, rng *rand.Rand) (*network.Result, error) {
				return network.Run(damam.Spec(), gniNo.G0, core.EncodeGNIInputs(gniNo.G1),
					damam.OptimalGNICheater(), network.Options{Seed: rng.Int63()})
			},
		})
	}
	return targets, nil
}
