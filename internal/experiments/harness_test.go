package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dip/internal/graph"
	"dip/internal/network"
	"dip/internal/wire"
)

// coinSpec accepts iff the node's single challenge bit is 0 — a protocol
// whose acceptance is genuinely random, so scheduling bugs would show up
// as changed counts.
func coinSpec() *network.Spec {
	return &network.Spec{
		Name: "coin",
		Rounds: []network.Round{{
			Kind: network.Arthur,
			Challenge: func(v int, rng *rand.Rand, _ *network.NodeView) wire.Message {
				var w wire.Writer
				w.WriteBool(rng.Intn(2) == 1)
				return w.Message()
			},
		}, {Kind: network.Merlin}},
		Decide: func(v int, view *network.NodeView) bool {
			r := wire.NewReader(view.MyChallenges[0])
			b, err := r.ReadBool()
			return err == nil && !b
		},
	}
}

type nopProver struct{}

func (nopProver) Respond(_ int, view *network.ProverView) (*network.Response, error) {
	return network.Broadcast(view.Graph.N(), wire.Empty), nil
}

func coinTrial(g *graph.Graph) NetTrial {
	return func(i int, rng *rand.Rand) (*network.Result, error) {
		return network.Run(coinSpec(), g, nil, nopProver{}, network.Options{Seed: rng.Int63()})
	}
}

// TestRunTrialsDeterministicAcrossWorkerCounts is the harness's core
// guarantee: identical acceptance counts for any parallelism level.
func TestRunTrialsDeterministicAcrossWorkerCounts(t *testing.T) {
	g := graph.Path(2)
	const k = 64
	var want TrialStats
	for run, workers := range []int{1, 2, 7, 64} {
		cfg := Config{Seed: 5, Parallel: workers}
		got, err := RunTrials(cfg, 99, k, coinTrial(g))
		if err != nil {
			t.Fatal(err)
		}
		if got.Trials != k || got.Sample == nil {
			t.Fatalf("workers=%d: malformed stats %+v", workers, got)
		}
		if run == 0 {
			want = got
			// A 2-node coin protocol accepts with probability 1/4: the
			// count must be interior, or the determinism check is vacuous.
			if want.Accepts == 0 || want.Accepts == k {
				t.Fatalf("degenerate acceptance count %d/%d", want.Accepts, k)
			}
			continue
		}
		if got.Accepts != want.Accepts {
			t.Fatalf("workers=%d: accepts %d, want %d (scheduling leaked into results)",
				workers, got.Accepts, want.Accepts)
		}
	}
}

// TestRunTrialsSaltSeparatesFamilies checks that distinct salts give
// distinct trial families under one seed.
func TestRunTrialsSaltSeparatesFamilies(t *testing.T) {
	g := graph.Path(2)
	cfg := Config{Seed: 5}
	a, err := RunTrials(cfg, 1, 64, coinTrial(g))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTrials(cfg, 2, 64, coinTrial(g))
	if err != nil {
		t.Fatal(err)
	}
	if a.Accepts == b.Accepts {
		t.Logf("salts collided on counts (possible but unlikely): %d", a.Accepts)
	}
	if a.Rejects() != a.Trials-a.Accepts {
		t.Fatal("Rejects inconsistent")
	}
	if est := a.Estimate(); est.Trials != 64 || est.Successes != a.Accepts {
		t.Fatalf("estimate inconsistent: %+v", est)
	}
}

// TestRunTrialsErrorIsLowestIndex pins deterministic error reporting.
func TestRunTrialsErrorIsLowestIndex(t *testing.T) {
	boom := errors.New("boom")
	cfg := Config{Seed: 1, Parallel: 4}
	_, err := RunTrials(cfg, 0, 32, func(i int, rng *rand.Rand) (*network.Result, error) {
		if i >= 10 {
			return nil, boom
		}
		return &network.Result{Accepted: true}, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

// TestRunTrialsAbortStopsNewWork ensures a failure stops the pool from
// claiming the whole index space.
func TestRunTrialsAbortStopsNewWork(t *testing.T) {
	var ran int64
	cfg := Config{Seed: 1, Parallel: 1}
	_, err := RunTrials(cfg, 0, 1<<20, func(i int, rng *rand.Rand) (*network.Result, error) {
		atomic.AddInt64(&ran, 1)
		return nil, errors.New("fail fast")
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if n := atomic.LoadInt64(&ran); n > 8 {
		t.Fatalf("pool kept running after failure: %d trials", n)
	}
}

func TestRunFlagTrials(t *testing.T) {
	cfg := Config{Seed: 3}
	count, err := RunFlagTrials(cfg, 7, 100, func(i int, rng *rand.Rand) (bool, error) {
		return rng.Intn(4) == 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count == 0 || count == 100 {
		t.Fatalf("degenerate count %d", count)
	}
	again, err := RunFlagTrials(cfg, 7, 100, func(i int, rng *rand.Rand) (bool, error) {
		return rng.Intn(4) == 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if again != count {
		t.Fatalf("flag trials not reproducible: %d vs %d", again, count)
	}
}

func TestTrialCountResolution(t *testing.T) {
	if got := (Config{}).TrialCount(200, 6); got != 200 {
		t.Fatalf("full default: %d", got)
	}
	if got := (Config{Quick: true}).TrialCount(200, 6); got != 6 {
		t.Fatalf("quick default: %d", got)
	}
	if got := (Config{Quick: true, Trials: 77}).TrialCount(200, 6); got != 77 {
		t.Fatalf("override: %d", got)
	}
	if DefaultTrials < 200 {
		t.Fatalf("DefaultTrials = %d, must certify the 2/3 vs 1/3 gap", DefaultTrials)
	}
}

// TestRunTrialsFailureAttributionAcrossWorkerCounts is the regression
// test for the misattribution race: when several trials fail, the
// reported index must be the lowest-indexed failing trial — identically
// at every Parallel setting, even when a higher-indexed failure lands
// first in wall-clock time (forced here by delaying the low failure).
func TestRunTrialsFailureAttributionAcrossWorkerCounts(t *testing.T) {
	const lowest = 5
	failing := map[int]bool{lowest: true, 11: true, 29: true}
	trial := func(i int, rng *rand.Rand) (*network.Result, error) {
		if failing[i] {
			if i == lowest {
				// Let the higher-indexed failures win the race.
				time.Sleep(10 * time.Millisecond)
			}
			return nil, fmt.Errorf("injected failure at %d", i)
		}
		return &network.Result{Accepted: true}, nil
	}
	want := ""
	for _, workers := range []int{1, 2, 8} {
		for round := 0; round < 3; round++ {
			cfg := Config{Seed: 1, Parallel: workers}
			_, err := RunTrials(cfg, 0, 32, trial)
			if err == nil {
				t.Fatalf("workers=%d: expected error", workers)
			}
			if want == "" {
				want = err.Error()
				if !strings.Contains(want, fmt.Sprintf("trial %d:", lowest)) {
					t.Fatalf("error does not name the lowest failing trial: %q", want)
				}
			}
			if err.Error() != want {
				t.Fatalf("workers=%d round %d: error %q, want %q (attribution depends on scheduling)",
					workers, round, err.Error(), want)
			}
		}
	}
}
