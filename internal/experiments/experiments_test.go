package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// TestAllExperimentsQuick runs every experiment in quick mode: the harness
// must produce well-formed tables without errors. Content-level assertions
// for individual experiments follow below.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep is slow")
	}
	// Parallel > 1 so `go test -race` exercises the trial pool inside
	// every experiment, not just the dedicated harness tests.
	cfg := Config{Seed: 1, Quick: true, Parallel: 4}
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			tab, err := r.Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", r.ID, err)
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("%s: empty table", r.ID)
			}
			for _, row := range tab.Rows {
				if len(row) != len(tab.Columns) && len(tab.Columns) > 0 {
					t.Fatalf("%s: ragged row %v", r.ID, row)
				}
			}
			out := tab.Format()
			if !strings.Contains(out, tab.ID) {
				t.Fatalf("%s: Format missing ID", r.ID)
			}
			t.Log("\n" + out)
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("e3"); !ok {
		t.Fatal("case-insensitive lookup failed")
	}
	if _, ok := ByID("e99"); ok {
		t.Fatal("unknown id found")
	}
}

func TestTableFormatAlignment(t *testing.T) {
	tab := &Table{
		ID: "T", Title: "demo",
		Columns: []string{"a", "long-column"},
		Notes:   []string{"a note"},
	}
	tab.AddRow(1, 0.5)
	tab.AddRow("wide-value", 2)
	out := tab.Format()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// title + header + separator + 2 rows + note
	if len(lines) != 6 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[len(lines)-1], "note:") {
		t.Fatal("note missing")
	}
	if !strings.Contains(out, "0.500") {
		t.Fatal("float formatting wrong")
	}
}

// TestE1CostsAreLogarithmic pins the headline scaling claim: as n grows by
// a factor, bits/lg n stays bounded.
func TestE1CostsAreLogarithmic(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tab, err := E1SymDMAMCost(Config{Seed: 2, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		ratio, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		if ratio > 40 {
			t.Fatalf("bits/lg n = %v: not logarithmic", ratio)
		}
	}
}
