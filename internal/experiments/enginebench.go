package experiments

import (
	"fmt"
	"math/rand"
	"testing"

	"dip/internal/graph"
	"dip/internal/network"
	"dip/internal/wire"
)

// EngineBench is the allocation budget of the engine's reference
// workload: the same one-echo-round, 256-node-cycle protocol the
// BenchmarkEngineSequential micro-benchmark times. allocs/op is a pure
// function of the engine's code (the run-state pool is an explicit
// freelist, not a GC-cleared sync.Pool), so the figure is reproducible
// and belongs in the canonical block of dip-bench/v1 files — where
// `dipbench -bench-check` can diff it against a fresh measurement and
// fail on regressions.
type EngineBench struct {
	// Workload names the measured configuration.
	Workload string `json:"workload"`
	// Nodes is the cycle size of the workload graph.
	Nodes int `json:"nodes"`
	// Trials is the number of measured runs (after one warmup run).
	Trials int `json:"trials"`
	// AllocsPerOp is the steady-state heap allocations per engine run.
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// engineBenchNodes matches BenchmarkEngineSequential's graph size.
const engineBenchNodes = 256

// engineBenchTrials is enough to amortize any pool-warming remainder
// while keeping the measurement under ~100ms.
const engineBenchTrials = 50

// MeasureEngineAllocs replays the engine micro-benchmark workload under
// testing.AllocsPerRun: a 256-node cycle running one Arthur echo round
// (32-bit challenges) and one Merlin echo response on the sequential
// executor, a fresh seed per run. AllocsPerRun performs one untimed
// warmup call, which also warms the run-state pool, so the reported
// figure is the steady state the trial harness actually sees.
func MeasureEngineAllocs() (*EngineBench, error) {
	g := graph.Cycle(engineBenchNodes)
	spec := &network.Spec{
		Name: "bench-echo",
		Rounds: []network.Round{
			{Kind: network.Arthur, Challenge: func(_ int, rng *rand.Rand, _ *network.NodeView) wire.Message {
				var w wire.Writer
				w.WriteUint(rng.Uint64()&0xFFFFFFFF, 32)
				return w.Message()
			}},
			{Kind: network.Merlin},
		},
		Decide: func(int, *network.NodeView) bool { return true },
	}
	prover := engineBenchProver{}

	var seed int64
	var runErr error
	allocs := testing.AllocsPerRun(engineBenchTrials, func() {
		if runErr != nil {
			return
		}
		opts := network.Options{Seed: seed, Sequential: true}
		seed++
		if _, err := network.Run(spec, g, nil, prover, opts); err != nil {
			runErr = err
		}
	})
	if runErr != nil {
		return nil, fmt.Errorf("engine bench run: %w", runErr)
	}
	return &EngineBench{
		Workload:    "sequential echo round, cycle graph",
		Nodes:       engineBenchNodes,
		Trials:      engineBenchTrials,
		AllocsPerOp: allocs,
	}, nil
}

// engineBenchProver echoes each node's last challenge, like the
// micro-benchmark's prover.
type engineBenchProver struct{}

func (engineBenchProver) Respond(_ int, view *network.ProverView) (*network.Response, error) {
	last := view.Challenges[len(view.Challenges)-1]
	resp := &network.Response{PerNode: make([]wire.Message, len(last))}
	copy(resp.PerNode, last)
	return resp, nil
}

// AllocRegressionLimit is the relative allocs/op growth -bench-check
// tolerates before failing: 10%.
const AllocRegressionLimit = 0.10

// CheckEngineAllocs compares a fresh measurement against a recorded
// budget and returns an error when the measurement exceeds the budget by
// more than AllocRegressionLimit. Improvements (fewer allocations) pass;
// the caller decides whether to re-record the budget.
func CheckEngineAllocs(recorded *EngineBench, measured *EngineBench) error {
	if recorded == nil {
		return fmt.Errorf("engine bench: results file has no engine_bench record to check against")
	}
	if recorded.AllocsPerOp <= 0 {
		return fmt.Errorf("engine bench: recorded allocs/op %v is not positive", recorded.AllocsPerOp)
	}
	limit := recorded.AllocsPerOp * (1 + AllocRegressionLimit)
	if measured.AllocsPerOp > limit {
		return fmt.Errorf("engine bench: %.1f allocs/op exceeds recorded %.1f by more than %d%% (limit %.1f)",
			measured.AllocsPerOp, recorded.AllocsPerOp, int(AllocRegressionLimit*100), limit)
	}
	return nil
}
