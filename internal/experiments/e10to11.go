package experiments

import (
	"fmt"
	"math/rand"

	"dip/internal/core"
	"dip/internal/graph"
	"dip/internal/network"
	"dip/internal/stats"
)

// E10GNIVariants compares the three GNI implementations: the paper-faithful
// four-round dAMAM, our one-exchange dAM round reduction, and the
// promise-free general protocol on *symmetric* instances (which the
// restricted protocols do not support).
func E10GNIVariants(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E10",
		Title:   "GNI variants: round reduction and the promise-free extension",
		Columns: []string{"variant", "rounds", "instance", "yes accept", "no accept", "bits/node"},
		Notes: []string{
			"gni-damam: Theorem 1.5 as stated (A M A M); gni-dam: one-exchange variant enabled by broadcasting σ and the linear ε-API hash",
			"gni-general: automorphism-compensated counting (Goldwasser–Sipser's fix), no asymmetry promise — run on highly symmetric instances (C6 vs K3,3)",
		},
	}
	n, k := 6, 80
	trials := cfg.TrialCount(DefaultTrials, 4)
	if cfg.Quick {
		k = 24
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 10))

	yes, err := core.NewGNIYesInstance(n, rng)
	if err != nil {
		return nil, err
	}
	no, err := core.NewGNINoInstance(n, rng)
	if err != nil {
		return nil, err
	}

	type variant struct {
		name   string
		rounds int
		salt   int64
		run    func(g0, g1 *graph.Graph, seed int64) (*network.Result, error)
	}
	damam, err := core.NewGNIDAMAM(n, k, cfg.Seed)
	if err != nil {
		return nil, err
	}
	dam, err := core.NewGNIDAM(n, k, cfg.Seed)
	if err != nil {
		return nil, err
	}
	general, err := core.NewGNIGeneral(n, k, cfg.Seed)
	if err != nil {
		return nil, err
	}

	measure := func(v variant, g0y, g1y, g0n, g1n *graph.Graph, instance string) error {
		yesStats, err := RunTrials(cfg, v.salt, trials, func(_ int, rng *rand.Rand) (*network.Result, error) {
			return v.run(g0y, g1y, rng.Int63())
		})
		if err != nil {
			return err
		}
		noStats, err := RunTrials(cfg, v.salt+500, trials, func(_ int, rng *rand.Rand) (*network.Result, error) {
			return v.run(g0n, g1n, rng.Int63())
		})
		if err != nil {
			return err
		}
		t.AddRow(v.name, v.rounds, instance,
			yesStats.Estimate().String(),
			noStats.Estimate().String(),
			yesStats.Sample.Cost.MaxProverBits())
		return nil
	}

	if err := measure(variant{"gni-damam", 4, 10100, func(a, b *graph.Graph, s int64) (*network.Result, error) {
		return damam.Run(a, b, damam.HonestProver(), s)
	}}, yes.G0, yes.G1, no.G0, no.G1, "rigid pair"); err != nil {
		return nil, err
	}
	if err := measure(variant{"gni-dam", 2, 10200, func(a, b *graph.Graph, s int64) (*network.Result, error) {
		return dam.Run(a, b, dam.HonestProver(), s)
	}}, yes.G0, yes.G1, no.G0, no.G1, "rigid pair"); err != nil {
		return nil, err
	}

	// Symmetric instances for the general protocol: C6 vs K_{3,3}.
	c6 := graph.Cycle(n)
	k33 := graph.New(n)
	for u := 0; u < n/2; u++ {
		for v := n / 2; v < n; v++ {
			k33.AddEdge(u, v)
		}
	}
	k33Shuffled, _ := k33.Shuffle(rng)
	c6Shuffled, _ := c6.Shuffle(rng)
	if err := measure(variant{"gni-general", 2, 10300, func(a, b *graph.Graph, s int64) (*network.Result, error) {
		return general.Run(a, b, general.HonestProver(), s)
	}}, c6, k33Shuffled, c6, c6Shuffled, "symmetric pair"); err != nil {
		return nil, err
	}

	// Marked formulation: induced subgraphs inside one network graph.
	mYesG, mYesMarks, err := markedPair(n, true, rng)
	if err != nil {
		return nil, err
	}
	mNoG, mNoMarks, err := markedPair(n, false, rng)
	if err != nil {
		return nil, err
	}
	marked, err := core.NewMarkedGNI(mYesG.N(), n, k, cfg.Seed)
	if err != nil {
		return nil, err
	}
	mYesStats, err := RunTrials(cfg, 10400, trials, func(_ int, rng *rand.Rand) (*network.Result, error) {
		return marked.Run(mYesG, mYesMarks, marked.HonestProver(), rng.Int63())
	})
	if err != nil {
		return nil, err
	}
	mNoStats, err := RunTrials(cfg, 10900, trials, func(_ int, rng *rand.Rand) (*network.Result, error) {
		return marked.Run(mNoG, mNoMarks, marked.HonestProver(), rng.Int63())
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("gni-marked", 4, "marked {0,1,⊥} network",
		mYesStats.Estimate().String(),
		mNoStats.Estimate().String(),
		mYesStats.Sample.Cost.MaxProverBits())
	return t, nil
}

// markedPair builds a marked-GNI instance with k-vertex rigid induced
// subgraphs that are non-isomorphic (yes) or isomorphic (no).
func markedPair(k int, yes bool, rng *rand.Rand) (*graph.Graph, []core.Mark, error) {
	a, err := graph.RandomAsymmetricConnected(k, rng)
	if err != nil {
		return nil, nil, err
	}
	var b *graph.Graph
	if yes {
		for {
			if b, err = graph.RandomAsymmetricConnected(k, rng); err != nil {
				return nil, nil, err
			}
			if !graph.AreIsomorphic(a, b) {
				break
			}
		}
	} else {
		b = a
	}
	b, _ = b.Shuffle(rng)

	const hubs = 3
	n := 2*k + hubs
	g := graph.New(n)
	marks := make([]core.Mark, n)
	for v := 0; v < k; v++ {
		marks[v] = core.MarkZero
		marks[v+k] = core.MarkOne
	}
	for v := 2 * k; v < n; v++ {
		marks[v] = core.MarkNone
	}
	for _, e := range a.Edges() {
		g.AddEdge(e[0], e[1])
	}
	for _, e := range b.Edges() {
		g.AddEdge(e[0]+k, e[1]+k)
	}
	for v := 0; v < 2*k; v++ {
		g.AddEdge(v, 2*k+v%hubs)
	}
	for h := 1; h < hubs; h++ {
		g.AddEdge(2*k, 2*k+h)
	}
	return g, marks, nil
}

// E11RPLS measures the randomized proof-labeling scheme of [4] against the
// deterministic LCP: identical Θ(n²) advice, exponentially smaller
// node-to-node verification traffic, soundness preserved.
func E11RPLS(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E11",
		Title:   "Randomized PLS ([4]): fingerprinted verification",
		Columns: []string{"n", "advice bits", "LCP n2n bits", "RPLS n2n bits", "saving", "bad advice caught"},
		Notes: []string{
			"n2n = max over nodes of bits sent to neighbors during verification",
			"RPLS forwards a (seed, fingerprint) pair per neighbor instead of the full advice",
		},
	}
	bases := []int{7, 15, 31}
	trials := cfg.TrialCount(DefaultTrials, 6)
	if cfg.Quick {
		bases = []int{7}
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 11))
	for bi, base := range bases {
		g, err := symInstance(base, rng)
		if err != nil {
			return nil, err
		}
		n := g.N()
		lcp, err := core.NewSymLCP(n)
		if err != nil {
			return nil, err
		}
		rpls, err := core.NewSymRPLS(n, cfg.Seed)
		if err != nil {
			return nil, err
		}
		lres, err := lcp.Run(g, lcp.HonestProver(), cfg.Seed)
		if err != nil {
			return nil, err
		}
		rres, err := rpls.Run(g, rpls.HonestProver(), cfg.Seed)
		if err != nil {
			return nil, err
		}
		if !lres.Accepted || !rres.Accepted {
			return nil, fmt.Errorf("E11: honest run rejected at n=%d", n)
		}
		bad, err := RunTrials(cfg, int64(11000+bi), trials, func(_ int, rng *rand.Rand) (*network.Result, error) {
			return rpls.Run(g, rpls.InconsistentAdviceProver(1), rng.Int63())
		})
		if err != nil {
			return nil, err
		}
		lN2N := lres.Cost.MaxNodeToNodeBits()
		rN2N := rres.Cost.MaxNodeToNodeBits()
		t.AddRow(n, rpls.AdviceBits(), lN2N, rN2N,
			fmt.Sprintf("%.0fx", float64(lN2N)/float64(rN2N)),
			stats.EstimateBernoulli(bad.Rejects(), bad.Trials).String())
	}
	return t, nil
}
