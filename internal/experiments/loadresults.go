package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"dip/internal/stats"
)

// LoadSchema identifies the machine-readable load-test format emitted by
// cmd/dipload: throughput and latency quantiles of a run against a
// cmd/dipserve instance. Unlike dip-bench/v1 files it is NOT reproducible
// byte-for-byte — wall-clock timings depend on the host — but its shape
// and invariants are, and dipbench -validate checks them.
const LoadSchema = "dip-load/v1"

// LoadResultsFile is the versioned record of one dipload run.
type LoadResultsFile struct {
	Schema string `json:"schema"`
	Tool   string `json:"tool"`
	// Target is the base URL the load was sent to.
	Target string `json:"target,omitempty"`
	// Seed is the base seed; request i runs with DeriveSeed(seed, i).
	Seed int64 `json:"seed"`
	// Concurrency is the number of in-flight client workers.
	Concurrency int `json:"concurrency"`
	// GOMAXPROCS records the generator process's scheduler width during the
	// run — provenance for comparing throughput numbers across -gomaxprocs
	// sweeps (a single-threaded generator saturates well before the service
	// does). Zero in files from older tool builds.
	GOMAXPROCS int `json:"gomaxprocs,omitempty"`
	// Requests counts completed requests (2xx responses with a decodable
	// report). Errors counts requests the service (or its answer)
	// actually failed: a non-retryable error status or an undecodable
	// report. Exhausted counts requests abandoned after the retry budget
	// ran out against 503 admission overflows — a merely-overloaded
	// service, NOT a protocol failure; consumers judging correctness
	// must read Errors, consumers judging capacity read Exhausted.
	// Retries counts 503-and-retry round trips (each eventually
	// succeeded, exhausted its budget, or is in Errors). Dropped counts
	// transport-level connection failures in request units (a dropped
	// batch of k items is k) — the acceptance gate requires it to be
	// zero.
	Requests  int `json:"requests"`
	Errors    int `json:"errors"`
	Exhausted int `json:"exhausted"`
	Retries   int `json:"retries"`
	Dropped   int `json:"dropped"`
	// WallMS is the whole run's wall-clock and ThroughputRPS the completed
	// requests per second over it.
	WallMS        float64              `json:"wall_ms"`
	ThroughputRPS float64              `json:"throughput_rps"`
	Protocols     []LoadProtocolResult `json:"protocols"`
	// BatchSize and Batches describe a `dipload -batch` run: requests were
	// sent as Batches bodies of up to BatchSize items each through
	// /v1/batch. Both are zero for plain (one-request-per-body) runs —
	// readers of older files see exactly that.
	BatchSize int `json:"batch_size,omitempty"`
	Batches   int `json:"batches,omitempty"`
	// RequestBench, when present, records the allocs/op of the in-process
	// request path (dip.MeasureRequestAllocs) measured alongside the run;
	// `dipbench -bench-check` diffs it against a fresh measurement.
	RequestBench *RequestBench `json:"request_bench,omitempty"`
}

// RequestBench is the allocation budget of the full request path —
// dispatch, setup (cached), engine run, report assembly — on the load
// generator's reference workload. Like EngineBench it is a reproducible
// function of the code, so it belongs in committed artifacts and gates
// regressions.
type RequestBench struct {
	// Workload names the measured configuration.
	Workload string `json:"workload"`
	// Nodes is the instance size of the workload graph.
	Nodes int `json:"nodes"`
	// Trials is the number of measured runs (after one warmup run).
	Trials int `json:"trials"`
	// AllocsPerOp is the steady-state heap allocations per request.
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// CheckRequestAllocs compares a fresh request-path measurement against a
// recorded budget, failing beyond AllocRegressionLimit — the request-path
// twin of CheckEngineAllocs.
func CheckRequestAllocs(recorded *RequestBench, measuredAllocs float64) error {
	if recorded == nil {
		return fmt.Errorf("request bench: results file has no request_bench record to check against")
	}
	if recorded.AllocsPerOp <= 0 {
		return fmt.Errorf("request bench: recorded allocs/op %v is not positive", recorded.AllocsPerOp)
	}
	limit := recorded.AllocsPerOp * (1 + AllocRegressionLimit)
	if measuredAllocs > limit {
		return fmt.Errorf("request bench: %.1f allocs/op exceeds recorded %.1f by more than %d%% (limit %.1f)",
			measuredAllocs, recorded.AllocsPerOp, int(AllocRegressionLimit*100), limit)
	}
	return nil
}

// LoadProtocolResult is the per-protocol slice of a load run.
type LoadProtocolResult struct {
	Protocol string `json:"protocol"`
	Requests int    `json:"requests"`
	Errors   int    `json:"errors"`
	// Exhausted mirrors the top-level field per protocol: requests
	// whose 503-retry budget ran out (overload, not failure).
	Exhausted     int            `json:"exhausted,omitempty"`
	ThroughputRPS float64        `json:"throughput_rps"`
	LatencyMS     LatencySummary `json:"latency_ms"`
	// BatchLatencyMS, present only in -batch runs, summarizes whole-batch
	// round trips (LatencyMS then holds the per-request approximation:
	// batch latency divided by batch size, queue-full retry time included
	// in the mean like every other sample).
	BatchLatencyMS *LatencySummary `json:"batch_latency_ms,omitempty"`
}

// LatencySummary is a quantile sketch of request latencies, in
// milliseconds.
type LatencySummary struct {
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

// SummarizeLatencies computes the quantile sketch of a latency sample.
func SummarizeLatencies(durations []time.Duration) LatencySummary {
	if len(durations) == 0 {
		return LatencySummary{}
	}
	ms := make([]float64, len(durations))
	for i, d := range durations {
		ms[i] = float64(d) / float64(time.Millisecond)
	}
	sort.Float64s(ms)
	return LatencySummary{
		P50:  stats.Percentile(ms, 50),
		P95:  stats.Percentile(ms, 95),
		P99:  stats.Percentile(ms, 99),
		Mean: stats.Mean(ms),
		Max:  ms[len(ms)-1],
	}
}

// Validate checks the structural invariants of a decoded load file.
func (f *LoadResultsFile) Validate() error {
	if f.Schema != LoadSchema {
		return fmt.Errorf("load: schema %q, want %q", f.Schema, LoadSchema)
	}
	if f.Concurrency < 1 {
		return fmt.Errorf("load: concurrency %d", f.Concurrency)
	}
	if f.GOMAXPROCS < 0 {
		return fmt.Errorf("load: gomaxprocs %d", f.GOMAXPROCS)
	}
	if f.Requests < 0 || f.Errors < 0 || f.Exhausted < 0 || f.Retries < 0 || f.Dropped < 0 {
		return fmt.Errorf("load: negative counters")
	}
	if f.Requests == 0 {
		return fmt.Errorf("load: no completed requests")
	}
	if f.WallMS <= 0 {
		return fmt.Errorf("load: wall_ms %v", f.WallMS)
	}
	if f.ThroughputRPS < 0 {
		return fmt.Errorf("load: throughput %v", f.ThroughputRPS)
	}
	if len(f.Protocols) == 0 {
		return fmt.Errorf("load: no per-protocol results")
	}
	total, totalExhausted := 0, 0
	for i, p := range f.Protocols {
		if p.Protocol == "" {
			return fmt.Errorf("load: protocol %d unnamed", i)
		}
		if p.Requests < 0 || p.Errors < 0 || p.Exhausted < 0 {
			return fmt.Errorf("load: protocol %q: negative counters", p.Protocol)
		}
		l := p.LatencyMS
		if l.P50 < 0 || l.P50 > l.P95 || l.P95 > l.P99 || l.P99 > l.Max {
			return fmt.Errorf("load: protocol %q: non-monotone latency quantiles %+v", p.Protocol, l)
		}
		if b := p.BatchLatencyMS; b != nil {
			if b.P50 < 0 || b.P50 > b.P95 || b.P95 > b.P99 || b.P99 > b.Max {
				return fmt.Errorf("load: protocol %q: non-monotone batch latency quantiles %+v", p.Protocol, *b)
			}
		}
		total += p.Requests
		totalExhausted += p.Exhausted
	}
	if total != f.Requests {
		return fmt.Errorf("load: per-protocol requests sum to %d, total %d", total, f.Requests)
	}
	if totalExhausted != f.Exhausted {
		return fmt.Errorf("load: per-protocol exhausted sum to %d, total %d", totalExhausted, f.Exhausted)
	}
	if f.BatchSize < 0 || f.Batches < 0 {
		return fmt.Errorf("load: negative batch counters")
	}
	if (f.BatchSize == 0) != (f.Batches == 0) {
		return fmt.Errorf("load: batch_size %d with batches %d", f.BatchSize, f.Batches)
	}
	if rb := f.RequestBench; rb != nil && rb.AllocsPerOp <= 0 {
		return fmt.Errorf("load: request_bench allocs/op %v is not positive", rb.AllocsPerOp)
	}
	return nil
}

// Encode writes the file as stable, indented JSON with a trailing newline.
func (f *LoadResultsFile) Encode(w io.Writer) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteFile encodes the results to path.
func (f *LoadResultsFile) WriteFile(path string) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.Encode(out); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// DecodeLoadResults parses and validates a load file.
func DecodeLoadResults(r io.Reader) (*LoadResultsFile, error) {
	var f LoadResultsFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("load: %w", err)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// ReadLoadResultsFile decodes and validates the load file at path.
func ReadLoadResultsFile(path string) (*LoadResultsFile, error) {
	in, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	return DecodeLoadResults(in)
}
