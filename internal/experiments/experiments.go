// Package experiments implements the evaluation harness: one runner per
// experiment in DESIGN.md's per-experiment index (E1–E9), each regenerating
// the corresponding table of EXPERIMENTS.md. The paper is a theory paper
// with no measurement section, so the "tables" are its theorems turned into
// measurements: communication-cost scalings, estimated acceptance
// probabilities with confidence intervals, and the packing-bound
// arithmetic.
package experiments

import (
	"fmt"
	"strings"

	"dip/internal/obs"
)

// Config controls experiment sizes.
type Config struct {
	// Seed derives all randomness; equal seeds reproduce tables exactly,
	// independent of worker count and scheduling (per-trial randomness is
	// derived from (Seed, salt, trial index) — see RunTrials).
	Seed int64
	// Quick shrinks instance sizes and trial counts for use in tests; the
	// published tables use Quick = false.
	Quick bool
	// Trials, when positive, overrides every experiment's per-cell trial
	// count (the -trials flag of cmd/dipbench).
	Trials int
	// Parallel caps the trial-harness worker count; 0 means GOMAXPROCS.
	Parallel int
	// Progress, when non-nil, receives live per-cell progress (trials
	// completed, ETA) from the trial harness; nil runs silently.
	Progress *obs.Reporter
	// Recorder, when non-nil, collects the structured Cell record of
	// every trial batch for machine-readable output (see ResultsFile).
	Recorder *Recorder
}

// Table is one experiment's result, renderable as an aligned text table.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", x)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Runner is one experiment.
type Runner struct {
	ID   string
	Name string
	Run  func(Config) (*Table, error)
}

// All returns every experiment in order.
func All() []Runner {
	return []Runner{
		{"E1", "Sym dMAM cost (Theorem 1.1)", E1SymDMAMCost},
		{"E2", "Sym dAM cost (Theorem 1.3)", E2SymDAMCost},
		{"E3", "NP vs AM separation (Theorem 1.2)", E3Separation},
		{"E4", "Packing lower bound (Theorem 1.4)", E4Packing},
		{"E5", "GNI dAMAM (Theorem 1.5)", E5GNI},
		{"E6", "Linear hash family (Theorem 3.2)", E6HashFamily},
		{"E7", "Adversarial soundness", E7Adversaries},
		{"E8", "Spanning-tree PLS building block", E8SpanTree},
		{"E9", "Ablation: challenge-first needs the giant prime", E9Ablation},
		{"E10", "GNI variants: round reduction, promise-free extension", E10GNIVariants},
		{"E11", "Randomized PLS fingerprinting ([4])", E11RPLS},
		{"E12", "Soundness under injected faults", E12FaultMatrix},
	}
}

// ByID returns the runner with the given (case-insensitive) ID.
func ByID(id string) (Runner, bool) {
	for _, r := range All() {
		if strings.EqualFold(r.ID, id) {
			return r, true
		}
	}
	return Runner{}, false
}
