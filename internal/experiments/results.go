package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"dip/internal/network"
	"dip/internal/obs"
	"dip/internal/stats"
)

// Schema identifies the machine-readable results format emitted by
// cmd/dipbench -json. Bump the version suffix on any incompatible change
// so downstream tooling can refuse files it does not understand.
const Schema = "dip-bench/v1"

// ResultsFile is the versioned machine-readable counterpart of the
// EXPERIMENTS.md tables: everything in it except Timings is a pure
// function of (seed, quick, trials override), so two runs with equal
// flags produce byte-identical files at any -parallel / GOMAXPROCS
// setting — which is what makes committed BENCH_*.json artifacts
// diffable across PRs.
type ResultsFile struct {
	Schema string `json:"schema"`
	Tool   string `json:"tool"`
	Seed   int64  `json:"seed"`
	Quick  bool   `json:"quick"`
	// TrialsOverride echoes the -trials flag (0 = per-experiment default).
	TrialsOverride int                `json:"trials_override,omitempty"`
	GoMaxProcs     int                `json:"gomaxprocs"`
	Experiments    []ExperimentResult `json:"experiments"`
	// EngineBench records the deterministic allocs/op of the engine
	// reference workload (see MeasureEngineAllocs); unlike Timings it is
	// reproducible, so it lives in the canonical block and feeds the
	// `dipbench -bench-check` regression gate.
	EngineBench *EngineBench `json:"engine_bench,omitempty"`
	// Timings is execution metadata (wall times, worker count, engine
	// meters). It is inherently non-reproducible, so dipbench omits it
	// unless -json-timings is set, keeping the default artifact canonical.
	Timings *Timings `json:"timings,omitempty"`
}

// ExperimentResult is one experiment's table plus its structured cells.
type ExperimentResult struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
	// Cells holds the structured record of every RunTrials /
	// RunFlagTrials batch the experiment executed, in execution order.
	Cells []Cell `json:"cells,omitempty"`
}

// Cell is the structured result of one trial batch (one table cell's
// worth of Monte Carlo work), identified by its harness salt.
type Cell struct {
	Salt int64 `json:"salt"`
	// Kind is "protocol" for engine-run batches and "flag" for plain
	// boolean Monte Carlo sweeps (no cost accounting).
	Kind      string       `json:"kind"`
	Trials    int          `json:"trials"`
	Successes int          `json:"successes"`
	Estimate  Interval     `json:"estimate"`
	Cost      *CostSummary `json:"cost,omitempty"`
}

// Interval is a rate with its 95% Wilson confidence interval.
type Interval struct {
	Rate float64 `json:"rate"`
	Lo   float64 `json:"lo"`
	Hi   float64 `json:"hi"`
}

// intervalOf converts a stats.Estimate.
func intervalOf(e stats.Estimate) Interval {
	return Interval{Rate: e.Rate, Lo: e.Lo, Hi: e.Hi}
}

// CostSummary is the communication accounting of a cell's sample run,
// including the per-round decomposition of the paper's cost measure.
type CostSummary struct {
	MaxProverBits     int `json:"max_prover_bits"`
	TotalProverBits   int `json:"total_prover_bits"`
	MaxNodeToNodeBits int `json:"max_node_to_node_bits"`
	// MaxNode is the lowest-indexed node attaining MaxProverBits; the
	// per-round breakdown below is taken at this node, so its
	// to_prover+from_prover entries sum exactly to MaxProverBits.
	MaxNode  int            `json:"max_node"`
	PerRound []RoundSummary `json:"per_round"`
}

// RoundSummary is one round of the per-round breakdown at MaxNode.
type RoundSummary struct {
	Kind       string `json:"kind"` // "Arthur" or "Merlin"
	ToProver   int    `json:"to_prover"`
	FromProver int    `json:"from_prover"`
	NodeToNode int    `json:"node_to_node"`
}

// SummarizeCost extracts a CostSummary from a run's cost accounting.
func SummarizeCost(c *network.Cost) *CostSummary {
	v := c.ArgMaxProverNode()
	out := &CostSummary{
		MaxProverBits:     c.MaxProverBits(),
		TotalProverBits:   c.TotalProverBits(),
		MaxNodeToNodeBits: c.MaxNodeToNodeBits(),
		MaxNode:           v,
		PerRound:          make([]RoundSummary, len(c.PerRound)),
	}
	for k := range c.PerRound {
		r := &c.PerRound[k]
		out.PerRound[k] = RoundSummary{
			Kind:       r.Kind.String(),
			ToProver:   r.ToProver[v],
			FromProver: r.FromProver[v],
			NodeToNode: r.NodeToNode[v],
		}
	}
	return out
}

// Timings is non-canonical execution metadata.
type Timings struct {
	Parallel    int                `json:"parallel"`
	GoVersion   string             `json:"go_version"`
	TotalWallMS int64              `json:"total_wall_ms"`
	Experiments []ExperimentTiming `json:"experiments"`
	Engine      obs.Metrics        `json:"engine"`
}

// ExperimentTiming is one experiment's wall time.
type ExperimentTiming struct {
	ID     string `json:"id"`
	WallMS int64  `json:"wall_ms"`
}

// Validate checks the structural invariants of a decoded results file:
// a recognized schema, sane estimates, and — the metering contract — that
// every cell's per-round prover bits sum exactly to its aggregate
// MaxProverBits.
func (f *ResultsFile) Validate() error {
	if f.Schema != Schema {
		return fmt.Errorf("results: schema %q, want %q", f.Schema, Schema)
	}
	for _, exp := range f.Experiments {
		if exp.ID == "" {
			return fmt.Errorf("results: experiment with empty ID")
		}
		for ci, cell := range exp.Cells {
			if cell.Successes < 0 || cell.Successes > cell.Trials {
				return fmt.Errorf("results: %s cell %d: %d successes of %d trials",
					exp.ID, ci, cell.Successes, cell.Trials)
			}
			if cell.Estimate.Lo < 0 || cell.Estimate.Hi > 1 || cell.Estimate.Lo > cell.Estimate.Hi {
				return fmt.Errorf("results: %s cell %d: malformed interval [%v, %v]",
					exp.ID, ci, cell.Estimate.Lo, cell.Estimate.Hi)
			}
			if cell.Cost == nil {
				continue
			}
			sum := 0
			for _, r := range cell.Cost.PerRound {
				sum += r.ToProver + r.FromProver
			}
			if sum != cell.Cost.MaxProverBits {
				return fmt.Errorf("results: %s cell %d (salt %d): per-round prover bits sum to %d, aggregate is %d",
					exp.ID, ci, cell.Salt, sum, cell.Cost.MaxProverBits)
			}
		}
	}
	return nil
}

// Encode writes the file as stable, indented JSON with a trailing
// newline.
func (f *ResultsFile) Encode(w io.Writer) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteFile encodes the results to path.
func (f *ResultsFile) WriteFile(path string) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.Encode(out); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// DecodeResults parses and validates a results file.
func DecodeResults(r io.Reader) (*ResultsFile, error) {
	var f ResultsFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("results: %w", err)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// ReadResultsFile decodes and validates the results file at path.
func ReadResultsFile(path string) (*ResultsFile, error) {
	in, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	return DecodeResults(in)
}

// Recorder collects the structured cells of one experiment run. Attach
// one to Config.Recorder and every RunTrials / RunFlagTrials batch
// appends its Cell in execution order (experiments call the harness
// sequentially, so the order is deterministic).
type Recorder struct {
	mu    sync.Mutex
	cells []Cell
}

// record appends one cell.
func (r *Recorder) record(c Cell) {
	r.mu.Lock()
	r.cells = append(r.cells, c)
	r.mu.Unlock()
}

// Cells returns the recorded cells in execution order.
func (r *Recorder) Cells() []Cell {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Cell(nil), r.cells...)
}
