package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func quickFaultFile(t *testing.T, parallel int) *FaultResultsFile {
	t.Helper()
	file, table, err := RunFaultMatrix(Config{Seed: 1, Quick: true, Parallel: parallel})
	if err != nil {
		t.Fatal(err)
	}
	if table == nil || len(table.Rows) != len(file.Cells) {
		t.Fatalf("table rows %d != cells %d", len(table.Rows), len(file.Cells))
	}
	if err := file.Validate(); err != nil {
		t.Fatal(err)
	}
	return file
}

// TestFaultMatrixDeterministic pins the dip-fault/v1 reproducibility
// contract: the encoded file is byte-identical regardless of the
// trial-harness worker count.
func TestFaultMatrixDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("fault matrix is slow")
	}
	var a, b bytes.Buffer
	if err := quickFaultFile(t, 1).Encode(&a); err != nil {
		t.Fatal(err)
	}
	if err := quickFaultFile(t, 4).Encode(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("fault matrix output depends on worker count:\nparallel=1: %d bytes\nparallel=4: %d bytes", a.Len(), b.Len())
	}
}

// TestFaultMatrixGates is the E12 regression gate: every cell of the
// matrix — injected faults on honest yes-instance runs and uninjected
// cheating anchors alike — must keep its acceptance rate certifiably
// below the paper's 1/3 soundness bound. Quick mode uses 40 trials per
// cell, enough for the Wilson upper bound to clear the gate.
func TestFaultMatrixGates(t *testing.T) {
	if testing.Short() {
		t.Skip("fault matrix is slow")
	}
	file := quickFaultFile(t, 0)
	for _, c := range file.GateViolations() {
		t.Errorf("cell %s/%s/%s intensity=%v instance=%s: %d/%d accepts, Wilson hi %.3f ≥ 1/3",
			c.Protocol, c.Fault, c.Plane, c.Intensity, c.Instance, c.Accepts, c.Trials, c.Estimate.Hi)
	}
	// The quick matrix must still exercise every fault class and both
	// planes.
	classes := make(map[string]bool)
	planes := make(map[string]bool)
	for _, c := range file.Cells {
		classes[c.Fault] = true
		planes[c.Plane] = true
	}
	for _, want := range []string{"none", "bitflip", "truncate", "drop", "equivocate", "nodeswap", "replay"} {
		if !classes[want] {
			t.Errorf("quick matrix has no %q cells", want)
		}
	}
	if !planes["prover"] || !planes["exchange"] {
		t.Errorf("quick matrix planes = %v, want both prover and exchange", planes)
	}
}

func TestFaultResultsRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("fault matrix is slow")
	}
	file := quickFaultFile(t, 0)
	path := filepath.Join(t.TempDir(), "fault.json")
	if err := file.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFaultResultsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(file, got) {
		t.Fatal("fault results did not round-trip through JSON")
	}
	schema, err := SniffSchema(path)
	if err != nil {
		t.Fatal(err)
	}
	if schema != FaultSchema {
		t.Fatalf("SniffSchema = %q, want %q", schema, FaultSchema)
	}
}

func TestFaultResultsValidateRejects(t *testing.T) {
	good := func() *FaultResultsFile {
		return &FaultResultsFile{
			Schema: FaultSchema,
			Tool:   "dipbench",
			Cells: []FaultCell{{
				Salt: 12000, Protocol: "sym-dmam", Fault: "bitflip", Plane: "prover",
				Intensity: 1, Instance: "yes", Trials: 40, Accepts: 0,
				Estimate: Interval{Rate: 0, Lo: 0, Hi: 0.088}, Gate: true,
			}},
		}
	}
	if err := good().Validate(); err != nil {
		t.Fatalf("valid file rejected: %v", err)
	}
	cases := []struct {
		name   string
		break_ func(*FaultResultsFile)
	}{
		{"schema", func(f *FaultResultsFile) { f.Schema = "dip-bench/v1" }},
		{"no cells", func(f *FaultResultsFile) { f.Cells = nil }},
		{"instance", func(f *FaultResultsFile) { f.Cells[0].Instance = "maybe" }},
		{"accepts", func(f *FaultResultsFile) { f.Cells[0].Accepts = 41 }},
		{"interval", func(f *FaultResultsFile) { f.Cells[0].Estimate.Hi = 1.5 }},
		{"intensity", func(f *FaultResultsFile) { f.Cells[0].Intensity = 2 }},
		{"gate mismatch", func(f *FaultResultsFile) { f.Cells[0].Gate = false }},
		{"dup salt", func(f *FaultResultsFile) { f.Cells = append(f.Cells, f.Cells[0]) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := good()
			tc.break_(f)
			if err := f.Validate(); err == nil {
				t.Fatal("Validate accepted a corrupted file")
			}
		})
	}
}

// TestSniffSchemaDispatch checks the -validate dispatch path: a dip-bench
// file sniffs as dip-bench, garbage errors out.
func TestSniffSchemaDispatch(t *testing.T) {
	dir := t.TempDir()
	bench := filepath.Join(dir, "bench.json")
	if err := os.WriteFile(bench, []byte(`{"schema":"dip-bench/v1"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	schema, err := SniffSchema(bench)
	if err != nil || schema != Schema {
		t.Fatalf("SniffSchema(bench) = %q, %v", schema, err)
	}
	junk := filepath.Join(dir, "junk.json")
	if err := os.WriteFile(junk, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := SniffSchema(junk); err == nil {
		t.Fatal("SniffSchema accepted junk")
	}
}
