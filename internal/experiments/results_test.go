package experiments

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"dip/internal/graph"
	"dip/internal/network"
)

// sampleResults builds a small well-formed ResultsFile.
func sampleResults() *ResultsFile {
	return &ResultsFile{
		Schema:     Schema,
		Tool:       "dipbench",
		Seed:       1,
		Quick:      true,
		GoMaxProcs: 4,
		Experiments: []ExperimentResult{{
			ID:      "E1",
			Title:   "demo",
			Columns: []string{"a", "b"},
			Rows:    [][]string{{"1", "2"}},
			Cells: []Cell{{
				Salt:      99,
				Kind:      "protocol",
				Trials:    10,
				Successes: 9,
				Estimate:  Interval{Rate: 0.9, Lo: 0.59, Hi: 0.98},
				Cost: &CostSummary{
					MaxProverBits:     7,
					TotalProverBits:   12,
					MaxNodeToNodeBits: 3,
					MaxNode:           0,
					PerRound: []RoundSummary{
						{Kind: "Arthur", ToProver: 3},
						{Kind: "Merlin", FromProver: 4, NodeToNode: 3},
					},
				},
			}},
		}},
	}
}

func TestResultsRoundTrip(t *testing.T) {
	f := sampleResults()
	var buf bytes.Buffer
	if err := f.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResults(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, f) {
		t.Fatalf("round trip changed the file:\nin:  %+v\nout: %+v", f, got)
	}
}

func TestResultsValidateRejectsMalformed(t *testing.T) {
	cases := []struct {
		name   string
		break_ func(*ResultsFile)
		want   string
	}{
		{"wrong-schema", func(f *ResultsFile) { f.Schema = "dip-bench/v0" }, "schema"},
		{"empty-id", func(f *ResultsFile) { f.Experiments[0].ID = "" }, "empty ID"},
		{"successes-overflow", func(f *ResultsFile) { f.Experiments[0].Cells[0].Successes = 11 }, "successes"},
		{"interval-out-of-range", func(f *ResultsFile) { f.Experiments[0].Cells[0].Estimate.Hi = 1.5 }, "interval"},
		{"per-round-mismatch", func(f *ResultsFile) { f.Experiments[0].Cells[0].Cost.PerRound[0].ToProver = 4 }, "per-round"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := sampleResults()
			tc.break_(f)
			err := f.Validate()
			if err == nil {
				t.Fatal("malformed file validated")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestRecorderCellsIdenticalAcrossParallel pins the canonical-artifact
// guarantee behind committed BENCH_*.json files: the recorded cells — and
// their encoded bytes — are identical at any worker count.
func TestRecorderCellsIdenticalAcrossParallel(t *testing.T) {
	g := graph.Path(2)
	encode := func(workers int) ([]Cell, []byte) {
		rec := &Recorder{}
		cfg := Config{Seed: 5, Parallel: workers, Recorder: rec}
		if _, err := RunTrials(cfg, 99, 64, coinTrial(g)); err != nil {
			t.Fatal(err)
		}
		if _, err := RunFlagTrials(cfg, 7, 50, func(i int, rng *rand.Rand) (bool, error) {
			return rng.Intn(3) == 0, nil
		}); err != nil {
			t.Fatal(err)
		}
		f := &ResultsFile{
			Schema: Schema, Tool: "dipbench", Seed: 5, GoMaxProcs: 4,
			Experiments: []ExperimentResult{{ID: "T", Title: "t", Cells: rec.Cells()}},
		}
		if err := f.Validate(); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := f.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		return rec.Cells(), buf.Bytes()
	}
	cells1, bytes1 := encode(1)
	if len(cells1) != 2 || cells1[0].Kind != "protocol" || cells1[1].Kind != "flag" {
		t.Fatalf("unexpected cells: %+v", cells1)
	}
	if cells1[0].Cost == nil || len(cells1[0].Cost.PerRound) == 0 {
		t.Fatal("protocol cell has no per-round cost")
	}
	if cells1[1].Cost != nil {
		t.Fatal("flag cell must not carry cost accounting")
	}
	cells8, bytes8 := encode(8)
	if !reflect.DeepEqual(cells1, cells8) {
		t.Fatalf("cells differ across worker counts:\n1: %+v\n8: %+v", cells1, cells8)
	}
	if !bytes.Equal(bytes1, bytes8) {
		t.Fatal("encoded results differ across worker counts")
	}
}

// TestSummarizeCostDecomposesMaxProverBits checks the JSON contract on a
// real run: to_prover + from_prover over the per-round rows sum exactly
// to max_prover_bits.
func TestSummarizeCostDecomposesMaxProverBits(t *testing.T) {
	g := graph.Path(3)
	res, err := network.Run(coinSpec(), g, nil, nopProver{}, network.Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	s := SummarizeCost(&res.Cost)
	sum := 0
	for _, r := range s.PerRound {
		sum += r.ToProver + r.FromProver
	}
	if sum != s.MaxProverBits {
		t.Fatalf("per-round rows sum to %d, max_prover_bits is %d", sum, s.MaxProverBits)
	}
}
