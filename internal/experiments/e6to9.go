package experiments

import (
	"fmt"
	"math"
	"math/big"
	"math/rand"

	"dip/internal/core"
	"dip/internal/graph"
	"dip/internal/hashing"
	"dip/internal/network"
	"dip/internal/perm"
	"dip/internal/prime"
	"dip/internal/stats"
	"dip/internal/wire"
)

// E6HashFamily measures Theorem 3.2: the linear hash family at Protocol 1's
// parameters (m = n², p ∈ [10n³, 100n³]) has collision probability ≤ m/p,
// and its linearity holds exactly.
func E6HashFamily(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E6",
		Title:   "Linear hash family (Theorem 3.2)",
		Columns: []string{"n", "m=n²", "p", "bound m/p", "measured collisions", "linearity"},
		Notes: []string{
			"collision rate measured over random seeds on random distinct indicator vectors",
			"linearity checked exactly on random vector pairs",
		},
	}
	ns := []int{8, 16, 32}
	trials := cfg.TrialCount(3000, 500)
	if cfg.Quick {
		ns = []int{8}
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 6))
	for ni, n := range ns {
		p, err := prime.ForCubicWindow(n, cfg.Seed)
		if err != nil {
			return nil, err
		}
		family, err := hashing.NewLinearFamily(n*n, p)
		if err != nil {
			return nil, err
		}
		// Two random distinct indicator vectors.
		x := []int{rng.Intn(n * n)}
		y := []int{rng.Intn(n * n)}
		for y[0] == x[0] {
			y[0] = rng.Intn(n * n)
		}
		collisions, err := RunFlagTrials(cfg, int64(6000+ni), trials, func(_ int, rng *rand.Rand) (bool, error) {
			seed := family.RandomSeed(rng)
			return family.HashIndicator(seed, x).Cmp(family.HashIndicator(seed, y)) == 0, nil
		})
		if err != nil {
			return nil, err
		}
		// Linearity on dense vectors.
		linear := true
		pv := p.Int64()
		for i := 0; i < 20 && linear; i++ {
			seed := family.RandomSeed(rng)
			a := make([]int64, n*n)
			b := make([]int64, n*n)
			s := make([]int64, n*n)
			for j := range a {
				a[j] = rng.Int63n(pv)
				b[j] = rng.Int63n(pv)
				s[j] = (a[j] + b[j]) % pv
			}
			lhs := family.HashDense(seed, s)
			rhs := family.AddMod(family.HashDense(seed, a), family.HashDense(seed, b))
			linear = lhs.Cmp(rhs) == 0
		}
		linStr := "exact"
		if !linear {
			linStr = "VIOLATED"
		}
		bound := new(big.Float).Quo(big.NewFloat(float64(n*n)), new(big.Float).SetInt(p))
		bf, _ := bound.Float64()
		t.AddRow(n, n*n, p.String(), fmt.Sprintf("%.2e", bf),
			stats.EstimateBernoulli(collisions, trials).String(), linStr)
	}
	return t, nil
}

// E7Adversaries measures soundness against every implemented cheating
// strategy: all acceptance rates must sit below 1/3 (most are 0).
func E7Adversaries(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E7",
		Title:   "Adversarial soundness: every attack is caught",
		Columns: []string{"protocol", "attack", "acceptance"},
		Notes: []string{
			"paper requirement: no prover convinces all nodes with probability ≥ 1/3 on a no-instance",
		},
	}
	trials := cfg.TrialCount(DefaultTrials, 6)
	rng := rand.New(rand.NewSource(cfg.Seed + 7))

	asym, err := graph.RandomAsymmetricConnected(12, rng)
	if err != nil {
		return nil, err
	}
	n := asym.N()

	dmam, err := core.NewSymDMAM(n, cfg.Seed)
	if err != nil {
		return nil, err
	}
	measure := func(name, attack string, salt int64, trial NetTrial) error {
		st, err := RunTrials(cfg, salt, trials, trial)
		if err != nil {
			return err
		}
		t.AddRow(name, attack, st.Estimate().String())
		return nil
	}

	if err := measure("sym-dmam", "random mapping", 7001, func(_ int, rng *rand.Rand) (*network.Result, error) {
		return dmam.Run(asym, dmam.RandomMappingProver(rng), rng.Int63())
	}); err != nil {
		return nil, err
	}
	if err := measure("sym-dmam", "echo forging", 7002, func(_ int, rng *rand.Rand) (*network.Result, error) {
		rho := perm.RandomNonIdentity(n, rng)
		return dmam.Run(asym, dmam.EchoCheatingProver(rho, rho.Moved()), rng.Int63())
	}); err != nil {
		return nil, err
	}
	if err := measure("sym-dmam", "inconsistent broadcast", 7003, func(_ int, rng *rand.Rand) (*network.Result, error) {
		return dmam.Run(asym, dmam.InconsistentBroadcastProver(rng), rng.Int63())
	}); err != nil {
		return nil, err
	}
	if err := measure("sym-dmam", "garbage", 7004, func(_ int, rng *rand.Rand) (*network.Result, error) {
		return dmam.Run(asym, core.GarbageProver([]int{64, 64}, rng), rng.Int63())
	}); err != nil {
		return nil, err
	}

	dam, err := core.NewSymDAM(n, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if err := measure("sym-dam", "post-hoc search (budget 100)", 7005, func(_ int, rng *rand.Rand) (*network.Result, error) {
		return dam.Run(asym, dam.PostHocCollisionProver(100, rng), rng.Int63())
	}); err != nil {
		return nil, err
	}

	// DSym: forged aggregate, rotating the forging node through the graph.
	f := graph.ConnectedGNP(8, 0.5, rng)
	dg := graph.DSymGraph(f, 1)
	dsym, err := core.NewDSymDAM(8, 1, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if err := measure("dsym-dam", "forged subtree sum", 7006, func(i int, rng *rand.Rand) (*network.Result, error) {
		return dsym.Run(dg, dsym.ForgingProver(i%dg.N()), rng.Int63())
	}); err != nil {
		return nil, err
	}

	// GNI: the optimal cheater on an isomorphic pair. Each trial runs a
	// full preimage search per repetition — the parallel harness is what
	// makes the full trial count affordable here.
	gni, err := core.NewGNIDAMAM(6, 32, cfg.Seed)
	if err != nil {
		return nil, err
	}
	no, err := core.NewGNINoInstance(6, rng)
	if err != nil {
		return nil, err
	}
	if err := measure("gni-damam", "optimal cheater (honest search on iso pair)", 7007,
		func(_ int, rng *rand.Rand) (*network.Result, error) {
			return gni.Run(no.G0, no.G1, gni.OptimalGNICheater(), rng.Int63())
		}); err != nil {
		return nil, err
	}
	return t, nil
}

// E8SpanTree measures the [23] building block: Θ(log n) advice, honest
// acceptance, and rejection of corrupted advice.
func E8SpanTree(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E8",
		Title:   "Spanning-tree proof labeling scheme ([23], building block)",
		Columns: []string{"n", "advice bits", "3·lg n", "honest", "corrupted rejected"},
	}
	ns := []int{16, 64, 256, 1024}
	if cfg.Quick {
		ns = []int{16, 64}
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 8))
	for _, n := range ns {
		g := graph.ConnectedGNP(n, gnpDensity(n), rng)
		lcp, err := core.NewSpanTreeLCP(n)
		if err != nil {
			return nil, err
		}
		res, err := lcp.Run(g, lcp.HonestProver(), cfg.Seed)
		if err != nil {
			return nil, err
		}
		corrupt := func(round, node int, m wire.Message) wire.Message {
			if node != n/2 {
				return m
			}
			out := wire.Message{Data: append([]byte(nil), m.Data...), Bits: m.Bits}
			out.Data[0] ^= 1
			return out
		}
		cres, err := network.Run(lcp.Spec(), g, nil, lcp.HonestProver(),
			network.Options{Seed: cfg.Seed, Corrupt: corrupt})
		if err != nil {
			return nil, err
		}
		t.AddRow(n, lcp.AdviceBits(), 3*wire.WidthFor(n),
			fmt.Sprintf("accepted=%v", res.Accepted),
			fmt.Sprintf("rejected=%v", !cres.Accepted))
	}
	return t, nil
}

// gnpDensity returns a connectivity-friendly G(n,p) edge probability,
// about 3·ln(n)/n (well above the connectivity threshold ln(n)/n).
func gnpDensity(n int) float64 {
	return 3 * math.Log(float64(n)) / float64(n)
}

// E9Ablation demonstrates why the challenge-first protocol needs the
// n^{n+2}-sized modulus: against weakened variants with small primes, the
// post-hoc collision search succeeds at rate ≈ 1-(1-c/p)^budget, and the
// acceptance falls as the modulus grows.
func E9Ablation(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E9",
		Title:   "Ablation: challenge-first (dAM) soundness vs hash modulus size",
		Columns: []string{"modulus p", "lg p", "attack budget", "attack acceptance"},
		Notes: []string{
			"protocol: Sym dAM (Protocol 2 structure) with the modulus replaced",
			"attack: choose the mapping after seeing the challenge, searching for a collision",
			"the paper's modulus (≈ n^{n+2}) makes the search space hopeless: the dMAM/dAM cost gap is the price of commitment order",
		},
	}
	primes := []int64{101, 1009, 10007, 100003}
	budget := 600
	trials := cfg.TrialCount(DefaultTrials, 6)
	if cfg.Quick {
		primes = []int64{101, 1009}
		budget = 200
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 9))
	asym, err := graph.RandomAsymmetricConnected(10, rng)
	if err != nil {
		return nil, err
	}
	for pi, pv := range primes {
		p := big.NewInt(pv)
		weak, err := core.NewSymDAMWithPrime(asym.N(), p)
		if err != nil {
			return nil, err
		}
		st, err := RunTrials(cfg, int64(9000+pi), trials, func(_ int, rng *rand.Rand) (*network.Result, error) {
			return weak.Run(asym, weak.PostHocCollisionProver(budget, rng), rng.Int63())
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(p.String(), wire.WidthForBig(p), budget, st.Estimate().String())
	}
	// Reference row: the real Protocol 2 modulus defeats the same attack.
	real, err := core.NewSymDAM(asym.N(), cfg.Seed)
	if err != nil {
		return nil, err
	}
	st, err := RunTrials(cfg, 9100, trials, func(_ int, rng *rand.Rand) (*network.Result, error) {
		return real.Run(asym, real.PostHocCollisionProver(50, rng), rng.Int63())
	})
	if err != nil {
		return nil, err
	}
	t.AddRow(fmt.Sprintf("n^{n+2} window (lg p = %d)", wire.WidthForBig(real.P())),
		wire.WidthForBig(real.P()), 50, st.Estimate().String())
	return t, nil
}
