package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"dip/internal/network"
	"dip/internal/obs"
	"dip/internal/stats"
)

// DefaultTrials is the full-size per-cell trial count. It is wired to the
// Hoeffding plan of stats.CertifyingTrials: 200 trials estimate an
// acceptance probability within ±1/8 at 99.5% confidence, so an observed
// rate near 1 (resp. 0) yields a Wilson interval that certifies the
// paper's completeness > 2/3 (resp. soundness < 1/3) threshold with room
// to spare. The pre-harness default of ~10 trials produced intervals like
// [0.72, 1.00] that could not even separate 2/3 from 1/3.
var DefaultTrials = maxOf(200, stats.CertifyingTrials(1.0/8, 0.005))

func maxOf(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TrialCount resolves a per-cell trial count: the -trials override wins,
// then Quick mode's reduced count, then the experiment's full default.
func (c Config) TrialCount(full, quick int) int {
	if c.Trials > 0 {
		return c.Trials
	}
	if c.Quick {
		return quick
	}
	return full
}

// NetTrial runs one independent trial of a protocol experiment. i is the
// trial index in [0, k); rng is a private source derived deterministically
// from (Config.Seed, salt, i) — the trial must draw ALL of its randomness
// (prover construction and the engine seed alike) from it, so that trial i
// is a pure function of the configuration regardless of which worker runs
// it or in what order.
type NetTrial func(i int, rng *rand.Rand) (*network.Result, error)

// TrialStats summarizes a batch of independent trials.
type TrialStats struct {
	Accepts int
	Trials  int
	// Sample is trial 0's result, kept for cost inspection: communication
	// costs are structural, so any single trial is representative.
	Sample *network.Result
}

// Estimate returns the acceptance-probability estimate with its 95% Wilson
// interval.
func (s TrialStats) Estimate() stats.Estimate {
	return stats.EstimateBernoulli(s.Accepts, s.Trials)
}

// Rejects returns the number of rejecting trials.
func (s TrialStats) Rejects() int { return s.Trials - s.Accepts }

// RunTrials fans k independent trials across Config.Parallel workers
// (default GOMAXPROCS) and counts acceptances. Per-trial randomness is
// derived from (Config.Seed, salt, i) alone, so results are bit-for-bit
// reproducible for a fixed seed no matter the worker count or scheduling;
// salt separates the independent trial families inside one experiment
// (honest vs. adversarial sweeps, different table rows, ...).
//
// Trials should run the engine in its default sequential mode: a single
// run has no useful internal parallelism, and the harness supplies all the
// concurrency the hardware can take one level up.
func RunTrials(cfg Config, salt int64, k int, trial NetTrial) (TrialStats, error) {
	out := TrialStats{Trials: k}
	if k <= 0 {
		return out, nil
	}
	accepted := make([]bool, k)
	results := make([]*network.Result, 1) // results[0] = sample
	err := cfg.forEachTrial(salt, k, func(i int, rng *rand.Rand) error {
		res, err := trial(i, rng)
		if err != nil {
			return err
		}
		accepted[i] = res.Accepted
		if i == 0 {
			results[0] = res
		}
		return nil
	})
	if err != nil {
		return TrialStats{}, err
	}
	for _, ok := range accepted {
		if ok {
			out.Accepts++
		}
	}
	out.Sample = results[0]
	if cfg.Recorder != nil {
		cfg.Recorder.record(Cell{
			Salt:      salt,
			Kind:      "protocol",
			Trials:    k,
			Successes: out.Accepts,
			Estimate:  intervalOf(out.Estimate()),
			Cost:      SummarizeCost(&out.Sample.Cost),
		})
	}
	return out, nil
}

// RunFlagTrials is RunTrials for trials that yield a plain boolean (hash
// collision checks and other non-protocol Monte Carlo sweeps). It returns
// the number of true outcomes.
func RunFlagTrials(cfg Config, salt int64, k int, trial func(i int, rng *rand.Rand) (bool, error)) (int, error) {
	if k <= 0 {
		return 0, nil
	}
	flags := make([]bool, k)
	err := cfg.forEachTrial(salt, k, func(i int, rng *rand.Rand) error {
		ok, err := trial(i, rng)
		flags[i] = ok
		return err
	})
	if err != nil {
		return 0, err
	}
	count := 0
	for _, ok := range flags {
		if ok {
			count++
		}
	}
	if cfg.Recorder != nil {
		cfg.Recorder.record(Cell{
			Salt:      salt,
			Kind:      "flag",
			Trials:    k,
			Successes: count,
			Estimate:  intervalOf(stats.EstimateBernoulli(count, k)),
		})
	}
	return count, nil
}

// forEachTrial is the worker pool underneath RunTrials/RunFlagTrials: it
// claims indices through an atomic counter and derives each trial's RNG
// from (Seed, salt, i).
//
// Failure attribution is deterministic by construction: on the first
// failure at index f, workers stop claiming indices ≥ f but keep running
// every index < f (all of which were claimed before f, since the counter
// hands out indices in order), recording any further failures. The
// reported "trial %d" is therefore always the lowest-indexed failing
// trial of the whole batch — the same index at any Parallel setting and
// under any scheduling, matching the harness's reproducibility contract.
// (The previous implementation aborted on a single flag checked between
// claim and execution, so a low-indexed failing trial could be skipped
// when a higher-indexed trial failed first, and the reported index could
// vary across -parallel values.)
func (c Config) forEachTrial(salt int64, k int, body func(i int, rng *rand.Rand) error) error {
	workers := c.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > k {
		workers = k
	}
	base := stats.DeriveSeed(c.Seed, salt)
	errs := make([]error, k)
	c.Progress.StartCell(k)
	defer c.Progress.FinishCell()

	var next int64
	minFail := int64(k) // lowest failing index seen so far; k = none
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				// Every index below the current lowest failure was claimed
				// before it (the counter is monotonic) and runs to
				// completion; indices at or above it are abandoned.
				if i >= k || int64(i) >= atomic.LoadInt64(&minFail) {
					return
				}
				rng := rand.New(rand.NewSource(stats.DeriveSeed(base, int64(i))))
				err := body(i, rng)
				obs.RecordTrial()
				c.Progress.Tick()
				if err != nil {
					errs[i] = err
					lowerMin(&minFail, int64(i))
				}
			}
		}()
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("trial %d: %w", i, err)
		}
	}
	return nil
}

// lowerMin atomically lowers *addr to v if v is smaller.
func lowerMin(addr *int64, v int64) {
	for {
		cur := atomic.LoadInt64(addr)
		if v >= cur || atomic.CompareAndSwapInt64(addr, cur, v) {
			return
		}
	}
}
