package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func sampleLoadFile() *LoadResultsFile {
	return &LoadResultsFile{
		Schema: LoadSchema, Tool: "dipload", Seed: 1, Concurrency: 8,
		Requests: 100, WallMS: 250, ThroughputRPS: 400,
		Protocols: []LoadProtocolResult{{
			Protocol: "sym-dmam", Requests: 100, ThroughputRPS: 400,
			LatencyMS: LatencySummary{P50: 1, P95: 2, P99: 3, Mean: 1.2, Max: 4},
		}},
	}
}

func TestLoadResultsRoundTrip(t *testing.T) {
	f := sampleLoadFile()
	var buf bytes.Buffer
	if err := f.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeLoadResults(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Requests != 100 || got.Concurrency != 8 || len(got.Protocols) != 1 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestLoadResultsValidate(t *testing.T) {
	cases := []struct {
		name  string
		mod   func(*LoadResultsFile)
		wants string
	}{
		{"schema", func(f *LoadResultsFile) { f.Schema = "dip-load/v0" }, "schema"},
		{"no requests", func(f *LoadResultsFile) { f.Requests = 0; f.Protocols[0].Requests = 0 }, "no completed"},
		{"sum mismatch", func(f *LoadResultsFile) { f.Protocols[0].Requests = 99 }, "sum to"},
		{"non-monotone quantiles", func(f *LoadResultsFile) { f.Protocols[0].LatencyMS.P95 = 0.5 }, "non-monotone"},
		{"negative dropped", func(f *LoadResultsFile) { f.Dropped = -1 }, "negative"},
		{"negative exhausted", func(f *LoadResultsFile) { f.Exhausted = -1 }, "negative"},
		{"negative per-proto exhausted", func(f *LoadResultsFile) {
			f.Protocols[0].Exhausted = -1
			f.Exhausted = -1
		}, "negative"},
		{"exhausted sum mismatch", func(f *LoadResultsFile) { f.Exhausted = 5 }, "exhausted sum"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := sampleLoadFile()
			tc.mod(f)
			err := f.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.wants) {
				t.Fatalf("err = %v, want mention of %q", err, tc.wants)
			}
		})
	}
}

// TestLoadResultsExhaustedDistinct: exhausted retry budgets are their
// own ledger — a file recording overload is valid with zero errors, and
// the per-protocol slices must sum to the top-level counter.
func TestLoadResultsExhaustedDistinct(t *testing.T) {
	f := sampleLoadFile()
	f.Exhausted = 7
	f.Protocols[0].Exhausted = 7
	if err := f.Validate(); err != nil {
		t.Fatalf("exhausted-but-healthy file rejected: %v", err)
	}
	var buf bytes.Buffer
	if err := f.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	wire := buf.String()
	got, err := DecodeLoadResults(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Exhausted != 7 || got.Errors != 0 || got.Protocols[0].Exhausted != 7 {
		t.Fatalf("exhausted not preserved: %+v", got)
	}
	if !strings.Contains(wire, `"exhausted": 7`) {
		t.Fatalf("exhausted field missing from wire form:\n%s", wire)
	}
}

func TestSummarizeLatencies(t *testing.T) {
	var ds []time.Duration
	for i := 1; i <= 100; i++ {
		ds = append(ds, time.Duration(i)*time.Millisecond)
	}
	s := SummarizeLatencies(ds)
	if s.P50 < 50 || s.P50 > 51 {
		t.Fatalf("p50 = %v", s.P50)
	}
	if s.P99 < 99 || s.P99 > 100 {
		t.Fatalf("p99 = %v", s.P99)
	}
	if s.Max != 100 {
		t.Fatalf("max = %v", s.Max)
	}
	if s.P50 > s.P95 || s.P95 > s.P99 || s.P99 > s.Max {
		t.Fatalf("non-monotone summary: %+v", s)
	}
	if z := SummarizeLatencies(nil); z != (LatencySummary{}) {
		t.Fatalf("empty sample: %+v", z)
	}
}
