package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"dip/internal/core"
	"dip/internal/graph"
	"dip/internal/lower"
	"dip/internal/network"
	"dip/internal/perm"
)

// symInstance builds a connected symmetric graph on 2·base+2 vertices.
func symInstance(base int, rng *rand.Rand) (*graph.Graph, error) {
	core, err := graph.RandomAsymmetricConnected(base, rng)
	if err != nil {
		return nil, err
	}
	return graph.Doubled(core, 0), nil
}

// E1SymDMAMCost measures Theorem 1.1: Protocol 1 decides Sym with O(log n)
// bits per node. For each n it reports the exact per-node cost, the ratio
// to lg n, and estimated completeness / soundness.
func E1SymDMAMCost(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E1",
		Title:   "Sym ∈ dMAM[O(log n)] (Theorem 1.1, Protocol 1)",
		Columns: []string{"n", "bits/node", "bits/lg n", "completeness", "soundness(adv)"},
		Notes: []string{
			"bits/node = max over nodes of prover-communication bits (challenge included)",
			"soundness measured against the random-mapping adversary on asymmetric graphs",
			"paper: cost O(log n); completeness > 2/3; soundness error < 1/3",
		},
	}
	bases := []int{7, 15, 31, 63, 127}
	trials := cfg.TrialCount(DefaultTrials, 4)
	if cfg.Quick {
		bases = []int{7, 15}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for bi, base := range bases {
		g, err := symInstance(base, rng)
		if err != nil {
			return nil, err
		}
		n := g.N()
		proto, err := core.NewSymDMAM(n, cfg.Seed)
		if err != nil {
			return nil, err
		}

		honest, err := RunTrials(cfg, int64(1100+bi), trials, func(_ int, rng *rand.Rand) (*network.Result, error) {
			return proto.Run(g, proto.HonestProver(), rng.Int63())
		})
		if err != nil {
			return nil, err
		}
		bits := honest.Sample.Cost.MaxProverBits()

		// Soundness: asymmetric graph of the same size, cheating prover.
		asym, err := graph.RandomAsymmetricConnected(n, rng)
		if err != nil {
			return nil, err
		}
		cheat, err := RunTrials(cfg, int64(1200+bi), trials, func(_ int, rng *rand.Rand) (*network.Result, error) {
			return proto.Run(asym, proto.RandomMappingProver(rng), rng.Int63())
		})
		if err != nil {
			return nil, err
		}

		t.AddRow(n, bits,
			float64(bits)/math.Log2(float64(n)),
			honest.Estimate().String(),
			cheat.Estimate().String())
	}
	return t, nil
}

// E2SymDAMCost measures Theorem 1.3: Protocol 2 decides Sym with
// O(n log n) bits per node.
func E2SymDAMCost(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E2",
		Title:   "Sym ∈ dAM[O(n log n)] (Theorem 1.3, Protocol 2)",
		Columns: []string{"n", "bits/node", "bits/(n·lg n)", "completeness", "soundness(adv)"},
		Notes: []string{
			"the modulus p ∈ [10·n^{n+2}, 100·n^{n+2}] alone is Θ(n log n) bits",
			"paper: cost O(n log n)",
		},
	}
	bases := []int{6, 10, 16, 24}
	trials := cfg.TrialCount(DefaultTrials, 3)
	if cfg.Quick {
		bases = []int{6, 10}
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	for bi, base := range bases {
		g, err := symInstance(base, rng)
		if err != nil {
			return nil, err
		}
		n := g.N()
		proto, err := core.NewSymDAM(n, cfg.Seed)
		if err != nil {
			return nil, err
		}
		honest, err := RunTrials(cfg, int64(2100+bi), trials, func(_ int, rng *rand.Rand) (*network.Result, error) {
			return proto.Run(g, proto.HonestProver(), rng.Int63())
		})
		if err != nil {
			return nil, err
		}
		bits := honest.Sample.Cost.MaxProverBits()
		asym, err := graph.RandomAsymmetricConnected(n, rng)
		if err != nil {
			return nil, err
		}
		cheat, err := RunTrials(cfg, int64(2200+bi), trials, func(_ int, rng *rand.Rand) (*network.Result, error) {
			rho := perm.RandomNonIdentity(n, rng)
			return proto.Run(asym, proto.ProverWithMapping(rho, rho.Moved()), rng.Int63())
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(n, bits,
			float64(bits)/(float64(n)*math.Log2(float64(n))),
			honest.Estimate().String(),
			cheat.Estimate().String())
	}
	return t, nil
}

// E3Separation measures Theorem 1.2: on DSym instances, the dAM protocol
// costs O(log n) bits while the locally-checkable-proof baseline needs
// Θ(n²); the ratio grows without bound — the exponential separation.
func E3Separation(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E3",
		Title:   "Exponential NP vs AM separation on DSym (Theorem 1.2)",
		Columns: []string{"n", "dAM bits/node", "LCP advice bits", "ratio LCP/dAM"},
		Notes: []string{
			"LCP baseline: full adjacency matrix + mapping at every node (Θ(n²); optimal by [17])",
			"both verified to accept their honest provers on the same instance",
		},
	}
	sides := []int{6, 12, 24, 48, 96}
	if cfg.Quick {
		sides = []int{6, 12}
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	const half = 1
	for _, side := range sides {
		f := graph.ConnectedGNP(side, 0.5, rng)
		g := graph.DSymGraph(f, half)
		n := g.N()

		proto, err := core.NewDSymDAM(side, half, cfg.Seed)
		if err != nil {
			return nil, err
		}
		res, err := proto.Run(g, proto.HonestProver(), cfg.Seed)
		if err != nil {
			return nil, err
		}
		if !res.Accepted {
			return nil, fmt.Errorf("E3: dAM rejected a DSym instance (side=%d)", side)
		}
		damBits := res.Cost.MaxProverBits()

		lcp, err := core.NewSymLCP(n)
		if err != nil {
			return nil, err
		}
		lres, err := lcp.Run(g, lcp.HonestProver(), cfg.Seed)
		if err != nil {
			return nil, err
		}
		if !lres.Accepted {
			return nil, fmt.Errorf("E3: LCP rejected a symmetric instance (side=%d)", side)
		}
		lcpBits := lcp.AdviceBits()

		t.AddRow(n, damBits, lcpBits, float64(lcpBits)/float64(damBits))
	}
	return t, nil
}

// E4Packing runs the computational side of Theorem 1.4: it verifies the
// dumbbell symmetry criterion exhaustively on the 6-vertex family, sweeps
// the response length of the concrete simple-protocol family (soundness
// error ≈ 2^-L, matched-challenge disagreement ≥ 2/3 once sound), and
// tabulates the packing lower bound L = Ω(log log n).
func E4Packing(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E4",
		Title:   "Packing lower bound machinery (Theorem 1.4, Section 3.4)",
		Columns: []string{"quantity", "value"},
	}
	fam, err := lower.Family(6)
	if err != nil {
		return nil, err
	}
	t.AddRow("|F(6)| (connected asymmetric graphs on 6 vertices, up to iso)", len(fam))
	if err := lower.VerifySymmetryCriterion(fam); err != nil {
		return nil, fmt.Errorf("E4: %w", err)
	}
	t.AddRow(fmt.Sprintf("dumbbell criterion Sym(G(F_A,F_B)) ⟺ F_A=F_B (%d pairs)", len(fam)*len(fam)), "verified")

	sidesList := lower.MakeSides(fam)
	R := 4096
	if cfg.Quick {
		R = 512
	}
	for _, L := range []int{1, 2, 3, 6} {
		p := lower.SimpleHashProtocol{L: L, R: R}
		worst := p.MaxNoAcceptance(sidesList)
		dis := p.MinPairwiseDisagreement(sidesList)
		verdict := "unsound"
		if worst < 1.0/3 {
			verdict = "sound"
		}
		t.AddRow(fmt.Sprintf("simple protocol L=%d: max cheat acceptance / min disagreement", L),
			fmt.Sprintf("%.3f / %.3f (%s)", worst, dis, verdict))
	}

	for _, n := range []int{64, 1 << 10, 1 << 16, 1 << 24, 1 << 30} {
		t.AddRow(fmt.Sprintf("Theorem 1.4 bound: min response length at n=%d", n),
			lower.MinResponseBound(n))
	}
	packRng := rand.New(rand.NewSource(cfg.Seed + 4))
	for _, d := range []int{2, 3, 4} {
		got := lower.GreedyPacking(d, 4000, packRng)
		t.AddRow(fmt.Sprintf("Lemma 3.12 check: greedy 1/2-separated packing in dim %d (cap 5^%d = %v)",
			d, d, lower.PackingCapacity(d)), got)
	}
	t.Notes = append(t.Notes,
		"Lemma 3.12 capacity 5^d with d = 2^{2^{4L}} vs |F(n)| = 2^{Ω(n²)} forces L = Ω(log log n)",
		"the sweep shows soundness appears once 2^-L < 1/3 and disagreement ≥ 2/3 follows (Lemma 3.11)",
	)
	return t, nil
}

// E5GNI measures Theorem 1.5: acceptance separation and per-node cost of
// the distributed Goldwasser–Sipser protocol.
func E5GNI(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E5",
		Title:   "GNI ∈ dAMAM[O(n log n)] (Theorem 1.5, Goldwasser–Sipser)",
		Columns: []string{"n", "k", "yes accept", "no accept", "bits/node", "bits/(k·n·lg n)"},
		Notes: []string{
			"yes = non-isomorphic pair (accept wanted); no = isomorphic pair (reject wanted)",
			"the optimal cheater on no-instances IS the honest search (success ⟺ preimage exists)",
		},
	}
	type pt struct{ n, k int }
	points := []pt{{6, 80}, {7, 60}}
	trials := cfg.TrialCount(DefaultTrials, 6)
	if cfg.Quick {
		points = []pt{{6, 24}}
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 3))
	for pi, p := range points {
		proto, err := core.NewGNIDAMAM(p.n, p.k, cfg.Seed)
		if err != nil {
			return nil, err
		}
		yes, err := core.NewGNIYesInstance(p.n, rng)
		if err != nil {
			return nil, err
		}
		no, err := core.NewGNINoInstance(p.n, rng)
		if err != nil {
			return nil, err
		}
		run := func(inst *core.GNIInstance, salt int64) (TrialStats, error) {
			return RunTrials(cfg, salt, trials, func(_ int, rng *rand.Rand) (*network.Result, error) {
				return proto.Run(inst.G0, inst.G1, proto.HonestProver(), rng.Int63())
			})
		}
		yesStats, err := run(yes, int64(5100+pi))
		if err != nil {
			return nil, err
		}
		noStats, err := run(no, int64(5200+pi))
		if err != nil {
			return nil, err
		}
		bits := yesStats.Sample.Cost.MaxProverBits()
		norm := float64(bits) / (float64(p.k) * float64(p.n) * math.Log2(float64(p.n)))
		t.AddRow(p.n, p.k,
			yesStats.Estimate().String(),
			noStats.Estimate().String(),
			bits, norm)
	}
	return t, nil
}
