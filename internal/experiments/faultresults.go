package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// FaultSchema identifies the machine-readable fault-matrix format emitted
// by cmd/dipbench -faults. Same contract as Schema ("dip-bench/v1"): the
// file is a pure function of (seed, quick, trials override), byte-identical
// at any -parallel / GOMAXPROCS setting.
const FaultSchema = "dip-fault/v1"

// FaultResultsFile is the versioned record of one RunFaultMatrix sweep:
// protocols × fault classes × intensities, each cell an acceptance
// estimate under injected faults (or, for the "none" anchor cells, under
// a cheating prover with no injection).
type FaultResultsFile struct {
	Schema string `json:"schema"`
	Tool   string `json:"tool"`
	Seed   int64  `json:"seed"`
	Quick  bool   `json:"quick"`
	// TrialsOverride echoes the -trials flag (0 = matrix default).
	TrialsOverride int         `json:"trials_override,omitempty"`
	GoMaxProcs     int         `json:"gomaxprocs"`
	Cells          []FaultCell `json:"cells"`
}

// FaultCell is one matrix cell: a protocol run k times under one fault
// configuration.
type FaultCell struct {
	// Salt is the trial-harness salt of this cell (unique per cell).
	Salt int64 `json:"salt"`
	// Protocol names the protocol under test (e.g. "sym-dmam").
	Protocol string `json:"protocol"`
	// Fault is the fault class name ("bitflip", ..., or "none" for the
	// uninjected soundness anchor).
	Fault string `json:"fault"`
	// Plane is "prover", "exchange", or "" for anchor cells.
	Plane string `json:"plane,omitempty"`
	// Intensity is the per-delivery injection probability (1 = every
	// delivery; 0 for anchor cells).
	Intensity float64 `json:"intensity,omitempty"`
	// Instance is "yes" (honest prover on a yes-instance, corrupted in
	// flight) or "no" (cheating prover on a no-instance).
	Instance string `json:"instance"`
	// Trials / Accepts / Estimate mirror Cell: acceptance means every node
	// accepted the (corrupted) run.
	Trials   int      `json:"trials"`
	Accepts  int      `json:"accepts"`
	Estimate Interval `json:"estimate"`
	// Gate records whether the cell satisfies the soundness-under-fault
	// bound: the Wilson upper bound of the acceptance rate is below 1/3.
	Gate bool `json:"gate"`
}

// FaultBound is the acceptance bound every matrix cell is gated against:
// the paper's soundness threshold.
const FaultBound = 1.0 / 3

// Validate checks the structural invariants of a decoded fault-matrix
// file. It does NOT fail on gate violations — quick smoke runs keep their
// trial counts small — use GateViolations for the regression gate.
func (f *FaultResultsFile) Validate() error {
	if f.Schema != FaultSchema {
		return fmt.Errorf("faults: schema %q, want %q", f.Schema, FaultSchema)
	}
	if len(f.Cells) == 0 {
		return fmt.Errorf("faults: no cells")
	}
	seen := make(map[int64]bool, len(f.Cells))
	for i, c := range f.Cells {
		if c.Protocol == "" || c.Fault == "" {
			return fmt.Errorf("faults: cell %d: missing protocol or fault", i)
		}
		if c.Instance != "yes" && c.Instance != "no" {
			return fmt.Errorf("faults: cell %d: instance %q", i, c.Instance)
		}
		if c.Accepts < 0 || c.Accepts > c.Trials || c.Trials <= 0 {
			return fmt.Errorf("faults: cell %d: %d accepts of %d trials", i, c.Accepts, c.Trials)
		}
		if c.Estimate.Lo < 0 || c.Estimate.Hi > 1 || c.Estimate.Lo > c.Estimate.Hi {
			return fmt.Errorf("faults: cell %d: malformed interval [%v, %v]", i, c.Estimate.Lo, c.Estimate.Hi)
		}
		if c.Intensity < 0 || c.Intensity > 1 {
			return fmt.Errorf("faults: cell %d: intensity %v", i, c.Intensity)
		}
		if c.Gate != (c.Estimate.Hi < FaultBound) {
			return fmt.Errorf("faults: cell %d: gate %v inconsistent with interval hi %v", i, c.Gate, c.Estimate.Hi)
		}
		if seen[c.Salt] {
			return fmt.Errorf("faults: cell %d: duplicate salt %d", i, c.Salt)
		}
		seen[c.Salt] = true
	}
	return nil
}

// GateViolations lists the cells whose Wilson upper bound reaches 1/3 —
// the E12 regression condition is that a full-size run has none.
func (f *FaultResultsFile) GateViolations() []FaultCell {
	var out []FaultCell
	for _, c := range f.Cells {
		if !c.Gate {
			out = append(out, c)
		}
	}
	return out
}

// Encode writes the file as stable, indented JSON with a trailing newline.
func (f *FaultResultsFile) Encode(w io.Writer) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteFile encodes the results to path.
func (f *FaultResultsFile) WriteFile(path string) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.Encode(out); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// DecodeFaultResults parses and validates a fault-matrix file.
func DecodeFaultResults(r io.Reader) (*FaultResultsFile, error) {
	var f FaultResultsFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("faults: %w", err)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// ReadFaultResultsFile decodes and validates the fault-matrix file at
// path.
func ReadFaultResultsFile(path string) (*FaultResultsFile, error) {
	in, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	return DecodeFaultResults(in)
}

// SniffSchema reads just the schema field of a results file, so callers
// (dipbench -validate) can dispatch between dip-bench and dip-fault files.
func SniffSchema(path string) (string, error) {
	in, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer in.Close()
	var head struct {
		Schema string `json:"schema"`
	}
	if err := json.NewDecoder(in).Decode(&head); err != nil {
		return "", fmt.Errorf("results: %w", err)
	}
	return head.Schema, nil
}
