package bitset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewAndBasicOps(t *testing.T) {
	s := New(130)
	if s.Len() != 130 {
		t.Fatalf("Len = %d, want 130", s.Len())
	}
	if !s.Empty() {
		t.Fatal("new set not empty")
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		s.Add(i)
		if !s.Contains(i) {
			t.Fatalf("Contains(%d) = false after Add", i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Fatal("Contains(64) after Remove")
	}
	s.Flip(64)
	if !s.Contains(64) {
		t.Fatal("Flip did not set 64")
	}
	s.Flip(64)
	if s.Contains(64) {
		t.Fatal("Flip did not clear 64")
	}
}

func TestSetTo(t *testing.T) {
	s := New(10)
	s.SetTo(3, true)
	if !s.Contains(3) {
		t.Fatal("SetTo(3,true) did not set")
	}
	s.SetTo(3, false)
	if s.Contains(3) {
		t.Fatal("SetTo(3,false) did not clear")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	cases := []struct {
		name string
		f    func()
	}{
		{"negative length", func() { New(-1) }},
		{"add high", func() { New(4).Add(4) }},
		{"add negative", func() { New(4).Add(-1) }},
		{"contains high", func() { New(4).Contains(99) }},
		{"mismatched union", func() { New(4).UnionWith(New(5)) }},
		{"permute wrong length", func() { New(4).Permute([]int{0, 1}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			tc.f()
		})
	}
}

func TestFromIndices(t *testing.T) {
	s := FromIndices(9, 1, 3, 5)
	if got := s.Indices(); !reflect.DeepEqual(got, []int{1, 3, 5}) {
		t.Fatalf("Indices = %v", got)
	}
}

func TestBooleanAlgebra(t *testing.T) {
	a := FromIndices(8, 0, 1, 2, 3)
	b := FromIndices(8, 2, 3, 4, 5)

	u := a.Clone()
	u.UnionWith(b)
	if got := u.Indices(); !reflect.DeepEqual(got, []int{0, 1, 2, 3, 4, 5}) {
		t.Fatalf("union = %v", got)
	}

	i := a.Clone()
	i.IntersectWith(b)
	if got := i.Indices(); !reflect.DeepEqual(got, []int{2, 3}) {
		t.Fatalf("intersect = %v", got)
	}

	d := a.Clone()
	d.DifferenceWith(b)
	if got := d.Indices(); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("difference = %v", got)
	}

	x := a.Clone()
	x.XorWith(b)
	if got := x.Indices(); !reflect.DeepEqual(got, []int{0, 1, 4, 5}) {
		t.Fatalf("xor = %v", got)
	}

	if !a.Intersects(b) {
		t.Fatal("Intersects = false")
	}
	if a.Intersects(FromIndices(8, 6, 7)) {
		t.Fatal("Intersects with disjoint = true")
	}
	if !i.SubsetOf(a) || !i.SubsetOf(b) {
		t.Fatal("intersection not subset of operands")
	}
	if a.SubsetOf(b) {
		t.Fatal("a subset of b")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	a := FromIndices(8, 1)
	c := a.Clone()
	c.Add(2)
	if a.Contains(2) {
		t.Fatal("mutating clone changed original")
	}
	if !a.Equal(FromIndices(8, 1)) {
		t.Fatal("original changed")
	}
}

func TestEqual(t *testing.T) {
	if !FromIndices(8, 1, 2).Equal(FromIndices(8, 1, 2)) {
		t.Fatal("equal sets not Equal")
	}
	if FromIndices(8, 1).Equal(FromIndices(8, 2)) {
		t.Fatal("different sets Equal")
	}
	if FromIndices(8, 1).Equal(FromIndices(9, 1)) {
		t.Fatal("different lengths Equal")
	}
}

func TestFillClearTrim(t *testing.T) {
	s := New(70)
	s.Fill()
	if got := s.Count(); got != 70 {
		t.Fatalf("Count after Fill = %d, want 70", got)
	}
	s.Clear()
	if !s.Empty() {
		t.Fatal("not empty after Clear")
	}
}

func TestNextSet(t *testing.T) {
	s := FromIndices(200, 3, 64, 190)
	want := []int{3, 64, 190}
	var got []int
	for i := s.NextSet(0); i >= 0; i = s.NextSet(i + 1) {
		got = append(got, i)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("iteration = %v, want %v", got, want)
	}
	if s.NextSet(191) != -1 {
		t.Fatal("NextSet past end != -1")
	}
	if s.NextSet(-5) != 3 {
		t.Fatal("NextSet(-5) should clamp to 0")
	}
	if s.NextSet(64) != 64 {
		t.Fatal("NextSet(64) should include 64")
	}
}

func TestString(t *testing.T) {
	s := FromIndices(5, 0, 4)
	if got := s.String(); got != "10001" {
		t.Fatalf("String = %q", got)
	}
}

func TestBytesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 7, 8, 9, 63, 64, 65, 200} {
		s := New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 1 {
				s.Add(i)
			}
		}
		got, err := FromBytes(n, s.Bytes())
		if err != nil {
			t.Fatalf("n=%d: FromBytes: %v", n, err)
		}
		if !got.Equal(s) {
			t.Fatalf("n=%d: round trip mismatch", n)
		}
	}
}

func TestFromBytesLengthError(t *testing.T) {
	if _, err := FromBytes(16, []byte{0}); err == nil {
		t.Fatal("expected length error")
	}
}

func TestPermute(t *testing.T) {
	s := FromIndices(4, 0, 2)
	// rotation i -> i+1 mod 4
	got := s.Permute([]int{1, 2, 3, 0})
	if want := FromIndices(4, 1, 3); !got.Equal(want) {
		t.Fatalf("Permute = %v, want %v", got.Indices(), want.Indices())
	}
}

func TestPermuteNonInjective(t *testing.T) {
	s := FromIndices(3, 0, 1)
	got := s.Permute([]int{2, 2, 0})
	// both 0 and 1 map to 2
	if want := FromIndices(3, 2); !got.Equal(want) {
		t.Fatalf("Permute = %v, want %v", got.Indices(), want.Indices())
	}
}

// Property: union is commutative and idempotent; xor twice is identity.
func TestQuickProperties(t *testing.T) {
	mk := func(bits []bool) *Set {
		s := New(len(bits))
		for i, b := range bits {
			if b {
				s.Add(i)
			}
		}
		return s
	}

	commutative := func(a, b [67]bool) bool {
		x, y := mk(a[:]), mk(b[:])
		u1 := x.Clone()
		u1.UnionWith(y)
		u2 := y.Clone()
		u2.UnionWith(x)
		return u1.Equal(u2)
	}
	if err := quick.Check(commutative, nil); err != nil {
		t.Errorf("union not commutative: %v", err)
	}

	xorInvolution := func(a, b [67]bool) bool {
		x, y := mk(a[:]), mk(b[:])
		z := x.Clone()
		z.XorWith(y)
		z.XorWith(y)
		return z.Equal(x)
	}
	if err := quick.Check(xorInvolution, nil); err != nil {
		t.Errorf("xor not involutive: %v", err)
	}

	deMorgan := func(a, b [67]bool) bool {
		x, y := mk(a[:]), mk(b[:])
		// complement via Fill + Difference
		full := New(67)
		full.Fill()
		notX := full.Clone()
		notX.DifferenceWith(x)
		notY := full.Clone()
		notY.DifferenceWith(y)
		// ¬(x ∪ y) == ¬x ∩ ¬y
		lhs := x.Clone()
		lhs.UnionWith(y)
		nl := full.Clone()
		nl.DifferenceWith(lhs)
		rhs := notX.Clone()
		rhs.IntersectWith(notY)
		return nl.Equal(rhs)
	}
	if err := quick.Check(deMorgan, nil); err != nil {
		t.Errorf("de morgan failed: %v", err)
	}

	countUnionBound := func(a, b [67]bool) bool {
		x, y := mk(a[:]), mk(b[:])
		u := x.Clone()
		u.UnionWith(y)
		i := x.Clone()
		i.IntersectWith(y)
		return u.Count() == x.Count()+y.Count()-i.Count()
	}
	if err := quick.Check(countUnionBound, nil); err != nil {
		t.Errorf("inclusion-exclusion failed: %v", err)
	}

	bytesRoundTrip := func(a [67]bool) bool {
		x := mk(a[:])
		y, err := FromBytes(67, x.Bytes())
		return err == nil && y.Equal(x)
	}
	if err := quick.Check(bytesRoundTrip, nil); err != nil {
		t.Errorf("bytes round trip failed: %v", err)
	}
}

func TestIndicesEmpty(t *testing.T) {
	if got := New(10).Indices(); len(got) != 0 {
		t.Fatalf("Indices of empty = %v", got)
	}
}

func TestZeroLength(t *testing.T) {
	s := New(0)
	if !s.Empty() || s.Count() != 0 || s.NextSet(0) != -1 {
		t.Fatal("zero-length set misbehaves")
	}
	if len(s.Bytes()) != 0 {
		t.Fatal("zero-length Bytes not empty")
	}
}
