// Package bitset provides dense, fixed-length bit vectors.
//
// The paper represents subsets of the vertex set V as characteristic vectors
// in {0,1}^V (Section 2.1), and adjacency-matrix rows as vectors N(v). This
// package is the concrete realization of those vectors: a Set is a sequence
// of n bits backed by 64-bit words, supporting the boolean-algebra and
// iteration operations the protocols need.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a fixed-length bit vector. The zero value is an empty vector of
// length 0; use New to create a vector of a given length.
//
// All binary operations require both operands to have the same length and
// panic otherwise: mixing vector lengths is a programming error, not a
// runtime condition, in every caller in this module.
type Set struct {
	n     int
	words []uint64
}

// New returns a zeroed bit vector of length n. n must be non-negative.
func New(n int) *Set {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative length %d", n))
	}
	return &Set{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromIndices returns a bit vector of length n with the given bits set.
func FromIndices(n int, indices ...int) *Set {
	s := New(n)
	for _, i := range indices {
		s.Add(i)
	}
	return s
}

// Len returns the length (number of bit positions) of the vector.
func (s *Set) Len() int { return s.n }

// AppendHash folds the vector's length and content into h (FNV-1a over the
// backing words) and returns the extended hash. It allocates nothing, which
// is what makes it usable as the per-request cache-key fold in the setup
// cache: equal vectors fold equally, and the words beyond Len are kept
// zeroed by trim, so the fold is canonical.
func (s *Set) AppendHash(h uint64) uint64 {
	const fnvPrime = 1099511628211
	h ^= uint64(s.n)
	h *= fnvPrime
	for _, w := range s.words {
		h ^= w
		h *= fnvPrime
	}
	return h
}

// check panics if i is out of range.
func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// Add sets bit i.
func (s *Set) Add(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Remove clears bit i.
func (s *Set) Remove(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Flip toggles bit i.
func (s *Set) Flip(i int) {
	s.check(i)
	s.words[i/wordBits] ^= 1 << (uint(i) % wordBits)
}

// Contains reports whether bit i is set.
func (s *Set) Contains(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// SetTo sets bit i to v.
func (s *Set) SetTo(i int, v bool) {
	if v {
		s.Add(i)
	} else {
		s.Remove(i)
	}
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether no bits are set.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := &Set{n: s.n, words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// CopyFrom overwrites s with t's bits. The sets must have equal length.
func (s *Set) CopyFrom(t *Set) {
	s.sameLen(t, "CopyFrom")
	copy(s.words, t.words)
}

// Equal reports whether s and t have the same length and the same bits.
func (s *Set) Equal(t *Set) bool {
	if s.n != t.n {
		return false
	}
	for i, w := range s.words {
		if w != t.words[i] {
			return false
		}
	}
	return true
}

func (s *Set) sameLen(t *Set, op string) {
	if s.n != t.n {
		panic(fmt.Sprintf("bitset: %s of mismatched lengths %d and %d", op, s.n, t.n))
	}
}

// UnionWith sets s to s ∪ t.
func (s *Set) UnionWith(t *Set) {
	s.sameLen(t, "union")
	for i := range s.words {
		s.words[i] |= t.words[i]
	}
}

// IntersectWith sets s to s ∩ t.
func (s *Set) IntersectWith(t *Set) {
	s.sameLen(t, "intersect")
	for i := range s.words {
		s.words[i] &= t.words[i]
	}
}

// DifferenceWith sets s to s \ t.
func (s *Set) DifferenceWith(t *Set) {
	s.sameLen(t, "difference")
	for i := range s.words {
		s.words[i] &^= t.words[i]
	}
}

// XorWith sets s to the symmetric difference of s and t.
func (s *Set) XorWith(t *Set) {
	s.sameLen(t, "xor")
	for i := range s.words {
		s.words[i] ^= t.words[i]
	}
}

// Intersects reports whether s and t share any set bit.
func (s *Set) Intersects(t *Set) bool {
	s.sameLen(t, "intersects")
	for i := range s.words {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// SubsetOf reports whether every set bit of s is also set in t.
func (s *Set) SubsetOf(t *Set) bool {
	s.sameLen(t, "subset")
	for i := range s.words {
		if s.words[i]&^t.words[i] != 0 {
			return false
		}
	}
	return true
}

// Clear zeroes all bits.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Fill sets all n bits.
func (s *Set) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
}

// trim clears any bits beyond position n-1 in the last word.
func (s *Set) trim() {
	if rem := s.n % wordBits; rem != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << uint(rem)) - 1
	}
}

// NextSet returns the index of the first set bit at position >= from, or -1
// if there is none. Iterate over all members with:
//
//	for i := s.NextSet(0); i >= 0; i = s.NextSet(i + 1) { ... }
func (s *Set) NextSet(from int) int {
	if from < 0 {
		from = 0
	}
	if from >= s.n {
		return -1
	}
	wi := from / wordBits
	w := s.words[wi] >> (uint(from) % wordBits)
	if w != 0 {
		return from + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(s.words); wi++ {
		if s.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(s.words[wi])
		}
	}
	return -1
}

// Indices returns the indices of all set bits in increasing order.
func (s *Set) Indices() []int {
	out := make([]int, 0, s.Count())
	for i := s.NextSet(0); i >= 0; i = s.NextSet(i + 1) {
		out = append(out, i)
	}
	return out
}

// String renders the vector as a string of '0'/'1' characters, index 0 first.
func (s *Set) String() string {
	var b strings.Builder
	b.Grow(s.n)
	for i := 0; i < s.n; i++ {
		if s.Contains(i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// Bytes returns the vector packed into bytes, little-endian within each byte
// (bit i of the vector is bit i%8 of byte i/8). The result has length
// ceil(n/8).
func (s *Set) Bytes() []byte {
	out := make([]byte, (s.n+7)/8)
	for i := s.NextSet(0); i >= 0; i = s.NextSet(i + 1) {
		out[i/8] |= 1 << (uint(i) % 8)
	}
	return out
}

// FromBytes reconstructs a vector of length n from the packing produced by
// Bytes. Extra bits in the final byte are ignored.
func FromBytes(n int, data []byte) (*Set, error) {
	if want := (n + 7) / 8; len(data) != want {
		return nil, fmt.Errorf("bitset: got %d bytes for length %d, want %d", len(data), n, want)
	}
	s := New(n)
	for i := 0; i < n; i++ {
		if data[i/8]&(1<<(uint(i)%8)) != 0 {
			s.Add(i)
		}
	}
	return s, nil
}

// Permute returns the vector whose bit p(i) equals s's bit i. p must be a
// mapping from [0,n) to [0,n); if p is not injective, later indices win.
// This is the characteristic-vector action ρ(S) from Section 3.1.1 of the
// paper: ρ(S)_v = 1 iff there is u with ρ(u) = v and S_u = 1.
func (s *Set) Permute(p []int) *Set {
	return s.PermuteInto(New(s.n), p)
}

// PermuteInto is Permute writing into a caller-provided set of the same
// length, which is cleared first. It lets loops that permute many rows reuse
// one scratch set instead of allocating per row. Returns out.
func (s *Set) PermuteInto(out *Set, p []int) *Set {
	if len(p) != s.n {
		panic(fmt.Sprintf("bitset: permute mapping has length %d, want %d", len(p), s.n))
	}
	out.sameLen(s, "PermuteInto")
	out.Clear()
	for i := s.NextSet(0); i >= 0; i = s.NextSet(i + 1) {
		out.Add(p[i])
	}
	return out
}
