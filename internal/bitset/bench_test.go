package bitset

import (
	"math/rand"
	"testing"
)

func benchSet(n int, density float64, seed int64) *Set {
	rng := rand.New(rand.NewSource(seed))
	s := New(n)
	for i := 0; i < n; i++ {
		if rng.Float64() < density {
			s.Add(i)
		}
	}
	return s
}

func BenchmarkUnionWith(b *testing.B) {
	x := benchSet(4096, 0.5, 1)
	y := benchSet(4096, 0.5, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.UnionWith(y)
	}
}

func BenchmarkCount(b *testing.B) {
	x := benchSet(4096, 0.5, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Count()
	}
}

func BenchmarkIterate(b *testing.B) {
	x := benchSet(4096, 0.1, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := x.NextSet(0); j >= 0; j = x.NextSet(j + 1) {
		}
	}
}

func BenchmarkPermute(b *testing.B) {
	x := benchSet(1024, 0.5, 5)
	rng := rand.New(rand.NewSource(6))
	p := make([]int, 1024)
	for i := range p {
		p[i] = i
	}
	rng.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Permute(p)
	}
}
