package jobs

import (
	"encoding/json"
	"sort"
	"sync"
	"time"
)

// State is a job's lifecycle position as the store tracks it.
type State string

const (
	// StateQueued: published, not yet picked up by a worker.
	StateQueued State = "queued"
	// StateRunning: a worker is attempting it (including backoff waits
	// between attempts).
	StateRunning State = "running"
	// StateDone: finished successfully; Result holds the output.
	StateDone State = "done"
	// StateFailed: finished with a permanent (non-retryable) error.
	StateFailed State = "failed"
	// StateParked: poison — every attempt failed retryably until the
	// budget ran out; parked jobs are not retried again.
	StateParked State = "parked"
)

// Terminal reports whether s is a finished state.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateParked
}

// Record is everything the store knows about one job. Values are
// returned by copy; the store's internal record is never shared.
type Record struct {
	ID  string
	Key string
	// Meta is a caller-chosen annotation carried through the lifecycle
	// (the service stores the protocol name for status answers).
	Meta     string
	State    State
	Attempts int
	// Output is the job's product when State is StateDone.
	Output json.RawMessage
	// Error describes the failure for StateFailed/StateParked.
	Error      string
	EnqueuedMS int64
	SettledMS  int64
}

// Store is the bounded, TTL-evicting job status/result store. Live jobs
// (queued/running) are never evicted — their population is bounded by
// the queue bound plus the worker count; terminal records expire after
// ttl and are evicted oldest-first when the store exceeds cap. The
// idempotency index (Key -> ID) lives and dies with its record.
type Store struct {
	mu      sync.Mutex
	byID    map[string]*Record
	byKey   map[string]string
	ttl     time.Duration
	cap     int
	now     func() time.Time
	evicted int64
}

// DefaultResultTTL and DefaultResultCap bound the store when the caller
// does not choose: results live an hour, and at most 64k records are
// retained (oldest terminal evicted beyond that).
const (
	DefaultResultTTL = time.Hour
	DefaultResultCap = 65536
)

// NewStore builds a store with the given result TTL and record cap
// (zero values pick the defaults).
func NewStore(ttl time.Duration, capacity int) *Store {
	if ttl <= 0 {
		ttl = DefaultResultTTL
	}
	if capacity <= 0 {
		capacity = DefaultResultCap
	}
	return &Store{
		byID:  make(map[string]*Record),
		byKey: make(map[string]string),
		ttl:   ttl,
		cap:   capacity,
		now:   time.Now,
	}
}

// Enqueue registers a fresh queued record. When key is non-empty and
// already maps to a live or terminal record, no new record is created
// and the existing one is returned with dup=true — that is the
// idempotency contract: one key, one job, however many submissions.
func (s *Store) Enqueue(id, key, meta string) (rec Record, dup bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked()
	if key != "" {
		if prior, ok := s.byKey[key]; ok {
			if r, ok := s.byID[prior]; ok {
				return *r, true
			}
			// Key pointed at an evicted record: fall through and remint.
			delete(s.byKey, key)
		}
	}
	r := &Record{
		ID:         id,
		Key:        key,
		Meta:       meta,
		State:      StateQueued,
		EnqueuedMS: s.now().UnixMilli(),
	}
	s.byID[id] = r
	if key != "" {
		s.byKey[key] = id
	}
	return *r, false
}

// Adopt installs a replayed record (from a journal) verbatim: settled
// jobs keep their terminal state and original timestamps, pending jobs
// re-enter as queued.
func (s *Store) Adopt(rec Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := rec
	s.byID[r.ID] = &r
	if r.Key != "" {
		s.byKey[r.Key] = r.ID
	}
}

// Discard withdraws a non-terminal record (an admission that failed
// after the record was minted, e.g. a full backlog): the record and its
// key mapping go away as if the submission never happened.
func (s *Store) Discard(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.byID[id]
	if !ok || r.State.Terminal() {
		return
	}
	delete(s.byID, id)
	if r.Key != "" && s.byKey[r.Key] == id {
		delete(s.byKey, r.Key)
	}
}

// MarkRunning moves id to running and records the attempt count.
func (s *Store) MarkRunning(id string, attempts int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.byID[id]; ok {
		r.State = StateRunning
		r.Attempts = attempts
	}
}

// MarkQueued returns id to queued (a nacked attempt going back to the
// backlog, e.g. during drain).
func (s *Store) MarkQueued(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.byID[id]; ok && !r.State.Terminal() {
		r.State = StateQueued
	}
}

// Settle records a terminal result for id.
func (s *Store) Settle(id string, res Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.byID[id]
	if !ok || r.State.Terminal() {
		return
	}
	r.Attempts = res.Attempts
	r.SettledMS = s.now().UnixMilli()
	switch {
	case res.OK:
		r.State = StateDone
		r.Output = res.Output
	case res.Parked:
		r.State = StateParked
		r.Error = res.Error
	default:
		r.State = StateFailed
		r.Error = res.Error
	}
	s.sweepLocked()
}

// Get returns the record for id.
func (s *Store) Get(id string) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked()
	r, ok := s.byID[id]
	if !ok {
		return Record{}, false
	}
	return *r, true
}

// Len is the number of retained records; Evicted counts records the
// store has dropped (TTL or capacity) over its lifetime.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byID)
}

func (s *Store) Evicted() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evicted
}

// sweepLocked drops expired terminal records, then — if still above
// cap — the oldest-settled terminal records until back under. Live
// records are never dropped. Caller holds mu.
func (s *Store) sweepLocked() {
	cutoff := s.now().Add(-s.ttl).UnixMilli()
	for id, r := range s.byID {
		if r.State.Terminal() && r.SettledMS < cutoff {
			s.dropLocked(id, r)
		}
	}
	if len(s.byID) <= s.cap {
		return
	}
	type aged struct {
		id        string
		settledMS int64
	}
	var terminal []aged
	for id, r := range s.byID {
		if r.State.Terminal() {
			terminal = append(terminal, aged{id, r.SettledMS})
		}
	}
	sort.Slice(terminal, func(i, j int) bool { return terminal[i].settledMS < terminal[j].settledMS })
	for _, t := range terminal {
		if len(s.byID) <= s.cap {
			break
		}
		s.dropLocked(t.id, s.byID[t.id])
	}
}

func (s *Store) dropLocked(id string, r *Record) {
	delete(s.byID, id)
	if r.Key != "" && s.byKey[r.Key] == id {
		delete(s.byKey, r.Key)
	}
	s.evicted++
}
