package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dip/internal/faults"
)

// fastPool builds a pool with millisecond backoffs so retry tests run in
// test time, not wall time.
func fastPool(q Queue, workers int, run RunFunc, retryable func(error) bool, maxAttempts int, st *Store, m *Metrics) *Pool {
	return NewPool(q, PoolConfig{
		Workers:     workers,
		Run:         run,
		Retryable:   retryable,
		MaxAttempts: maxAttempts,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  4 * time.Millisecond,
		Seed:        1,
		Store:       st,
		Metrics:     m,
	})
}

// waitFor polls cond until true or the deadline, failing the test on
// expiry.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestPoolDrains: a pool of workers runs every published job to done.
func TestPoolDrains(t *testing.T) {
	q := NewMemQueue(0)
	st := NewStore(time.Hour, 1000)
	var m Metrics
	run := func(_ context.Context, payload json.RawMessage) (json.RawMessage, error) {
		return json.RawMessage(`{"echo":` + string(payload) + `}`), nil
	}
	p := fastPool(q, 3, run, nil, 3, st, &m)
	p.Start()
	const n = 40
	for i := 0; i < n; i++ {
		rec, _ := st.Enqueue(fmt.Sprintf("j-%04d", i), "", "t")
		_ = rec
		if err := q.Publish(mkJob(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "all jobs done", func() bool { return m.Completed.Value() == n })
	p.Stop()
	if q.Depth() != 0 || q.InFlight() != 0 {
		t.Fatalf("queue not drained: depth %d inflight %d", q.Depth(), q.InFlight())
	}
	for i := 0; i < n; i++ {
		r, ok := st.Get(fmt.Sprintf("j-%04d", i))
		if !ok || r.State != StateDone {
			t.Fatalf("job %d: %+v ok=%v", i, r, ok)
		}
		if want := fmt.Sprintf(`{"echo":{"i":%d}}`, i); string(r.Output) != want {
			t.Fatalf("job %d output %s, want %s", i, r.Output, want)
		}
	}
}

// TestPoolRetriesThenSucceeds: retryable failures back off and retry;
// the job completes once the fault clears, and the retry counter shows
// the attempts.
func TestPoolRetriesThenSucceeds(t *testing.T) {
	q := NewMemQueue(0)
	st := NewStore(time.Hour, 100)
	var m Metrics
	var calls atomic.Int64
	run := func(_ context.Context, _ json.RawMessage) (json.RawMessage, error) {
		if calls.Add(1) <= 2 {
			return nil, errors.New("transient")
		}
		return json.RawMessage(`"ok"`), nil
	}
	p := fastPool(q, 1, run, nil, 5, st, &m)
	p.Start()
	defer p.Stop()
	st.Enqueue("j-0000", "", "t")
	q.Publish(mkJob(0))
	waitFor(t, "retried job to complete", func() bool { return m.Completed.Value() == 1 })
	if got := m.Retries.Value(); got != 2 {
		t.Fatalf("retries = %d, want 2", got)
	}
	r, _ := st.Get("j-0000")
	if r.State != StateDone || r.Attempts != 3 {
		t.Fatalf("record: %+v, want done after 3 attempts", r)
	}
}

// TestPoolPermanentFailureNoRetry: a non-retryable error settles failed
// on the first attempt.
func TestPoolPermanentFailureNoRetry(t *testing.T) {
	q := NewMemQueue(0)
	st := NewStore(time.Hour, 100)
	var m Metrics
	var calls atomic.Int64
	permanent := errors.New("bad request")
	run := func(_ context.Context, _ json.RawMessage) (json.RawMessage, error) {
		calls.Add(1)
		return nil, permanent
	}
	p := fastPool(q, 1, run, func(err error) bool { return !errors.Is(err, permanent) }, 5, st, &m)
	p.Start()
	defer p.Stop()
	st.Enqueue("j-0000", "", "t")
	q.Publish(mkJob(0))
	waitFor(t, "permanent failure to settle", func() bool { return m.Failed.Value() == 1 })
	if calls.Load() != 1 {
		t.Fatalf("permanent failure retried: %d calls", calls.Load())
	}
	r, _ := st.Get("j-0000")
	if r.State != StateFailed || r.Error != "bad request" {
		t.Fatalf("record: %+v", r)
	}
}

// TestPoolParksPoison: a job that fails retryably forever parks after
// MaxAttempts instead of spinning.
func TestPoolParksPoison(t *testing.T) {
	q := NewMemQueue(0)
	st := NewStore(time.Hour, 100)
	var m Metrics
	var calls atomic.Int64
	run := func(_ context.Context, _ json.RawMessage) (json.RawMessage, error) {
		calls.Add(1)
		return nil, errors.New("always transient")
	}
	p := fastPool(q, 1, run, nil, 3, st, &m)
	p.Start()
	defer p.Stop()
	st.Enqueue("j-0000", "", "t")
	q.Publish(mkJob(0))
	waitFor(t, "poison job to park", func() bool { return m.Parked.Value() == 1 })
	if calls.Load() != 3 {
		t.Fatalf("parked after %d attempts, want 3", calls.Load())
	}
	r, _ := st.Get("j-0000")
	if r.State != StateParked || r.Attempts != 3 {
		t.Fatalf("record: %+v", r)
	}
	if q.Depth() != 0 || q.InFlight() != 0 {
		t.Fatal("parked job still occupies the queue")
	}
}

// TestPoolContainsPanics: a worker-kill (panic mid-attempt) is contained
// and counted; retries converge once the chaos budget is spent.
func TestPoolContainsPanics(t *testing.T) {
	q := NewMemQueue(0)
	st := NewStore(time.Hour, 100)
	var m Metrics
	inner := func(_ context.Context, _ json.RawMessage) (json.RawMessage, error) {
		return json.RawMessage(`"survived"`), nil
	}
	run := faults.WorkerKill(7, 2, inner)
	p := fastPool(q, 2, RunFunc(run), nil, 5, st, &m)
	p.Start()
	defer p.Stop()
	for i := 0; i < 4; i++ {
		st.Enqueue(fmt.Sprintf("j-%04d", i), "", "t")
		q.Publish(mkJob(i))
	}
	waitFor(t, "all jobs to survive worker kills", func() bool { return m.Completed.Value() == 4 })
	if m.Panics.Value() != 2 {
		t.Fatalf("panics contained = %d, want 2", m.Panics.Value())
	}
	if m.Parked.Value() != 0 || m.Failed.Value() != 0 {
		t.Fatalf("kills parked/failed jobs: parked %d failed %d", m.Parked.Value(), m.Failed.Value())
	}
}

// TestPoolAttemptTimeout: a stuck attempt is cut by the per-attempt
// deadline and the context actually reaches the run.
func TestPoolAttemptTimeout(t *testing.T) {
	q := NewMemQueue(0)
	st := NewStore(time.Hour, 100)
	var m Metrics
	run := func(ctx context.Context, _ json.RawMessage) (json.RawMessage, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	p := NewPool(q, PoolConfig{
		Workers:        1,
		Run:            run,
		MaxAttempts:    2,
		AttemptTimeout: 5 * time.Millisecond,
		BaseBackoff:    time.Millisecond,
		MaxBackoff:     2 * time.Millisecond,
		Store:          st,
		Metrics:        &m,
	})
	p.Start()
	defer p.Stop()
	st.Enqueue("j-0000", "", "t")
	q.Publish(mkJob(0))
	waitFor(t, "stuck job to park", func() bool { return m.Parked.Value() == 1 })
}

// TestPoolStopNacksBackoffWait: stopping mid-backoff returns the job to
// the queue instead of losing it — the drain contract the durable
// backend's replay depends on.
func TestPoolStopNacksBackoffWait(t *testing.T) {
	q := NewMemQueue(0)
	st := NewStore(time.Hour, 100)
	var m Metrics
	attempted := make(chan struct{}, 1)
	run := func(_ context.Context, _ json.RawMessage) (json.RawMessage, error) {
		select {
		case attempted <- struct{}{}:
		default:
		}
		return nil, errors.New("transient")
	}
	p := NewPool(q, PoolConfig{
		Workers:     1,
		Run:         run,
		MaxAttempts: 5,
		BaseBackoff: 10 * time.Second, // park the worker in a long backoff
		MaxBackoff:  10 * time.Second,
		Store:       st,
		Metrics:     &m,
	})
	p.Start()
	st.Enqueue("j-0000", "", "t")
	q.Publish(mkJob(0))
	<-attempted
	// The worker is now sleeping its 10s backoff; Stop must cut it
	// short and nack the job promptly.
	done := make(chan struct{})
	go func() { p.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("Stop blocked on a backoff sleep")
	}
	if q.Depth() != 1 {
		t.Fatalf("job lost during drain: depth %d, want 1", q.Depth())
	}
	if r, _ := st.Get("j-0000"); r.State != StateQueued {
		t.Fatalf("nacked job state %q, want queued", r.State)
	}
}

// TestPoolZeroWorkersIngestOnly: a pool with no workers accepts but
// never runs — the ingest-only mode the crash smoke uses to build a
// deterministic backlog.
func TestPoolZeroWorkersIngestOnly(t *testing.T) {
	q := NewMemQueue(0)
	var m Metrics
	p := fastPool(q, 0, func(_ context.Context, _ json.RawMessage) (json.RawMessage, error) {
		t.Error("ingest-only pool ran a job")
		return nil, nil
	}, nil, 3, nil, &m)
	p.Start()
	for i := 0; i < 5; i++ {
		q.Publish(mkJob(i))
	}
	time.Sleep(20 * time.Millisecond)
	p.Stop()
	if q.Depth() != 5 {
		t.Fatalf("ingest-only depth = %d, want 5", q.Depth())
	}
}

// TestPoolCrashReplayConvergence is the tier-level crash drill: run a
// file-backed pool, kill the process mid-backlog (simulated by stopping
// the pool without settling and reopening the journal), and require the
// second boot to complete every job exactly once.
func TestPoolCrashReplayConvergence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	const n = 30

	// Boot 1: slow runs, so Stop() lands mid-backlog.
	q1, err := OpenFileQueue(path, 0, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	var ran1 sync.Map
	var m1 Metrics
	st1 := NewStore(time.Hour, 1000)
	run1 := func(_ context.Context, payload json.RawMessage) (json.RawMessage, error) {
		time.Sleep(3 * time.Millisecond)
		var v struct {
			I int `json:"i"`
		}
		json.Unmarshal(payload, &v)
		ran1.Store(v.I, true)
		return json.RawMessage(fmt.Sprintf(`{"done":%d}`, v.I)), nil
	}
	p1 := fastPool(q1, 2, run1, nil, 3, st1, &m1)
	p1.Start()
	for i := 0; i < n; i++ {
		st1.Enqueue(fmt.Sprintf("j-%04d", i), fmt.Sprintf("key-%d", i), "t")
		if err := q1.Publish(mkJob(i)); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(25 * time.Millisecond) // let some jobs finish
	p1.Stop()
	// No q1.Close(): SIGKILL. The bufio writer has been flushed by every
	// append, so the journal is as durable as promised.

	// Boot 2: replay and finish everything.
	q2, err := OpenFileQueue(path, 0, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	stats, settled := q2.Replayed()
	if stats.Pending+stats.Settled != n {
		t.Fatalf("replay lost jobs: %d pending + %d settled != %d", stats.Pending, stats.Settled, n)
	}
	if stats.Pending == 0 {
		t.Fatal("crash drill finished everything before the kill; backlog empty")
	}
	var m2 Metrics
	st2 := NewStore(time.Hour, 1000)
	for _, s := range settled {
		st2.Adopt(Record{ID: s.Job.ID, Key: s.Job.Key, State: StateDone, Output: s.Result.Output, Attempts: s.Result.Attempts, SettledMS: s.AtMS})
	}
	var reran atomic.Int64
	run2 := func(_ context.Context, payload json.RawMessage) (json.RawMessage, error) {
		var v struct {
			I int `json:"i"`
		}
		json.Unmarshal(payload, &v)
		if _, dup := ran1.Load(v.I); dup {
			// A settled job must never re-run; an unsettled-but-executed
			// one may (at-least-once) — only flag true double effects.
			if r, ok := st2.Get(fmt.Sprintf("j-%04d", v.I)); ok && r.State == StateDone {
				reran.Add(1)
			}
		}
		return json.RawMessage(fmt.Sprintf(`{"done":%d}`, v.I)), nil
	}
	p2 := fastPool(q2, 4, run2, nil, 3, st2, &m2)
	p2.Start()
	waitFor(t, "replayed backlog to finish", func() bool {
		return m2.Completed.Value() == int64(stats.Pending)
	})
	p2.Stop()
	if err := q2.Close(); err != nil {
		t.Fatal(err)
	}
	if reran.Load() != 0 {
		t.Fatalf("%d settled jobs re-ran after replay", reran.Load())
	}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("j-%04d", i)
		r, ok := st2.Get(id)
		if !ok {
			// Settled before the crash and adopted, or completed in boot
			// 2 — either way the store must know it. (Jobs enqueued in
			// boot 1's store but pending at crash are re-tracked via
			// Adopt of queued records by the service; here pending jobs
			// were not adopted, so create-on-settle is acceptable only
			// if the settle found a record. Require presence for
			// adopted/settled ones.)
			if _, wasSettled := find(settled, id); wasSettled {
				t.Fatalf("settled job %s missing from boot-2 store", id)
			}
			continue
		}
		if r.State != StateDone {
			t.Fatalf("job %s state %q after convergence", id, r.State)
		}
	}
}

func find(settled []Settled, id string) (Settled, bool) {
	for _, s := range settled {
		if s.Job.ID == id {
			return s, true
		}
	}
	return Settled{}, false
}
