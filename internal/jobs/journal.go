package jobs

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"
)

// The file-backed queue is an append-only journal of two record kinds:
//
//	{"v":1,"op":"enq","at_ms":...,"job":{"id":...,"key":...,"payload":...}}
//	{"v":1,"op":"settle","at_ms":...,"id":...,"result":{...}}
//
// one JSON document per line. Publish appends an enq record, Ack appends
// a settle record; Nack and Dequeue touch nothing — an in-flight job is
// simply one whose enq has no settle yet, so a crash anywhere between
// dequeue and ack replays the job as pending on the next open. That is
// the whole recovery story: replay is a single forward pass that
// partitions enq records into settled (result retained for the store)
// and pending (re-enqueued in original order).
//
// Torn tails are expected: a SIGKILL can land mid-write, leaving a final
// partial line. Replay stops at the first undecodable record, truncates
// the file back to the last good byte offset, and reports the cut — the
// journal loses at most the single record being written at the instant
// of death, which for an enq means the client never got its 202 and
// resubmits (idempotency key dedups), and for a settle means the job
// re-runs (deterministic, so the effect is identical).
//
// Open also compacts: settled records older than retain are dropped and
// the file is rewritten to hold only live state, so the journal's size
// is bounded by backlog + retained results, not by lifetime throughput.

// journalVersion is the record format version.
const journalVersion = 1

// journalRecord is one line of the journal file.
type journalRecord struct {
	V    int    `json:"v"`
	Op   string `json:"op"`
	AtMS int64  `json:"at_ms"`
	// enq fields
	Job *Job `json:"job,omitempty"`
	// settle fields
	ID     string  `json:"id,omitempty"`
	Result *Result `json:"result,omitempty"`
}

// Settled is one replayed terminal job: what Open recovered from an
// enq+settle pair, handed to the caller to reseed its result store.
type Settled struct {
	Job    Job
	Result Result
	AtMS   int64 // settle wall-clock, for TTL accounting across restarts
}

// ReplayStats describes what Open recovered from an existing journal.
type ReplayStats struct {
	// Pending is how many unsettled jobs were re-enqueued.
	Pending int
	// Settled is how many terminal jobs were recovered (and retained
	// through compaction).
	Settled int
	// Expired is how many settle records were dropped by compaction
	// because they aged past the retain bound.
	Expired int
	// TruncatedBytes is how many bytes of torn tail were cut; 0 on a
	// clean journal.
	TruncatedBytes int64
}

// FileQueue is the durable backend: MemQueue ordering semantics plus an
// append-only journal that makes the backlog survive SIGKILL.
type FileQueue struct {
	mem  *MemQueue
	path string

	mu     sync.Mutex
	f      *os.File
	w      *bufio.Writer
	closed bool

	replay  ReplayStats
	settled []Settled
	pending []Job

	// now is injectable for tests; records carry wall-clock stamps only
	// for TTL accounting, never for ordering.
	now func() time.Time
}

// OpenFileQueue opens (or creates) the journal at path, replays it, and
// returns the queue with any unsettled backlog already pending. bound
// caps the pending backlog as in NewMemQueue; retain bounds how old a
// settled record may be before compaction drops it (0 keeps all).
func OpenFileQueue(path string, bound int, retain time.Duration) (*FileQueue, error) {
	q := &FileQueue{
		mem:  NewMemQueue(bound),
		path: path,
		now:  time.Now,
	}
	if err := q.openAndReplay(retain); err != nil {
		return nil, err
	}
	return q, nil
}

// openAndReplay reads the journal, truncates any torn tail, compacts it,
// and re-enqueues the pending backlog.
func (q *FileQueue) openAndReplay(retain time.Duration) error {
	data, err := os.ReadFile(q.path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("jobs: reading journal: %w", err)
	}

	type enqState struct {
		job     *Job
		settled *Result
		atMS    int64
	}
	var order []string // enq order
	byID := make(map[string]*enqState)

	good := int64(0) // byte offset of the last fully-decoded record
	for off := int64(0); off < int64(len(data)); {
		nl := int64(-1)
		for i := off; i < int64(len(data)); i++ {
			if data[i] == '\n' {
				nl = i
				break
			}
		}
		if nl < 0 {
			break // no terminator: torn tail
		}
		line := data[off : nl+1]
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			break // undecodable record: torn or corrupt tail
		}
		switch rec.Op {
		case "enq":
			if rec.Job == nil || rec.Job.ID == "" {
				return fmt.Errorf("jobs: journal enq record without a job at offset %d", off)
			}
			if byID[rec.Job.ID] == nil {
				byID[rec.Job.ID] = &enqState{job: rec.Job}
				order = append(order, rec.Job.ID)
			}
		case "settle":
			st := byID[rec.ID]
			if st == nil {
				return fmt.Errorf("jobs: journal settles unknown job %q at offset %d", rec.ID, off)
			}
			if st.settled == nil {
				st.settled = rec.Result
				st.atMS = rec.AtMS
			}
		default:
			return fmt.Errorf("jobs: journal record with unknown op %q at offset %d", rec.Op, off)
		}
		good = nl + 1
		off = nl + 1
	}
	q.replay.TruncatedBytes = int64(len(data)) - good

	// Partition into pending (re-enqueue) and settled (retain unless
	// expired), preserving enq order for both.
	cutoff := int64(0)
	if retain > 0 {
		cutoff = q.now().Add(-retain).UnixMilli()
	}
	var pendingJobs []*Job
	for _, id := range order {
		st := byID[id]
		switch {
		case st.settled == nil:
			pendingJobs = append(pendingJobs, st.job)
			q.pending = append(q.pending, *st.job)
			q.replay.Pending++
		case retain > 0 && st.atMS < cutoff:
			q.replay.Expired++
		default:
			res := *st.settled
			q.settled = append(q.settled, Settled{Job: *st.job, Result: res, AtMS: st.atMS})
			q.replay.Settled++
		}
	}

	// Compact: rewrite the journal to live state only, atomically via a
	// temp file so a crash mid-compaction leaves the old journal intact.
	tmp := q.path + ".compact"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("jobs: compacting journal: %w", err)
	}
	w := bufio.NewWriter(f)
	for _, s := range q.settled {
		job := s.Job
		res := s.Result
		if err := writeRecord(w, journalRecord{V: journalVersion, Op: "enq", AtMS: s.AtMS, Job: &job}); err != nil {
			f.Close()
			return err
		}
		if err := writeRecord(w, journalRecord{V: journalVersion, Op: "settle", AtMS: s.AtMS, ID: job.ID, Result: &res}); err != nil {
			f.Close()
			return err
		}
	}
	for _, j := range pendingJobs {
		if err := writeRecord(w, journalRecord{V: journalVersion, Op: "enq", AtMS: q.now().UnixMilli(), Job: j}); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("jobs: compacting journal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("jobs: compacting journal: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("jobs: compacting journal: %w", err)
	}
	if err := os.Rename(tmp, q.path); err != nil {
		return fmt.Errorf("jobs: compacting journal: %w", err)
	}

	// Reopen for appends and seed the in-memory queue. Settled IDs are
	// registered as seen so a duplicate Publish of a finished job is
	// still refused.
	q.f, err = os.OpenFile(q.path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("jobs: opening journal: %w", err)
	}
	q.w = bufio.NewWriter(q.f)
	for _, s := range q.settled {
		q.mem.mu.Lock()
		q.mem.seen[s.Job.ID] = true
		q.mem.mu.Unlock()
	}
	for _, j := range pendingJobs {
		if err := q.mem.Publish(j); err != nil {
			// A replayed backlog larger than the bound must not lose
			// jobs: the bound applies to new admissions, not recovery.
			if errors.Is(err, ErrBacklogFull) {
				q.mem.mu.Lock()
				q.mem.seen[j.ID] = true
				q.mem.pending = append(q.mem.pending, j)
				q.mem.mu.Unlock()
				continue
			}
			return fmt.Errorf("jobs: replaying job %s: %w", j.ID, err)
		}
	}
	return nil
}

func writeRecord(w *bufio.Writer, rec journalRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("jobs: encoding journal record: %w", err)
	}
	data = append(data, '\n')
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("jobs: appending journal record: %w", err)
	}
	return nil
}

// Replayed returns what Open recovered: stats plus the settled jobs the
// caller should reseed its result store with.
func (q *FileQueue) Replayed() (ReplayStats, []Settled) {
	return q.replay, q.settled
}

// PendingJobs returns the unsettled backlog Open re-enqueued, in order —
// the caller reseeds its status store with these so polls answer from
// the first instant of the new boot.
func (q *FileQueue) PendingJobs() []Job {
	return q.pending
}

// append writes one record and flushes it to the OS. The flush (not
// fsync) is the durability point we promise: the backlog survives
// process death; surviving whole-machine power loss would need fsync
// per record, which the serving path does not pay by default.
func (q *FileQueue) append(rec journalRecord) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	if err := writeRecord(q.w, rec); err != nil {
		return err
	}
	return q.w.Flush()
}

func (q *FileQueue) Publish(j *Job) error {
	// Admit in memory first (duplicate/bound checks), then journal. If
	// the append fails the job is withdrawn so memory and file agree.
	if err := q.mem.Publish(j); err != nil {
		return err
	}
	if err := q.append(journalRecord{V: journalVersion, Op: "enq", AtMS: q.now().UnixMilli(), Job: j}); err != nil {
		q.mem.mu.Lock()
		for i, p := range q.mem.pending {
			if p.ID == j.ID {
				q.mem.pending = append(q.mem.pending[:i], q.mem.pending[i+1:]...)
				break
			}
		}
		delete(q.mem.seen, j.ID)
		q.mem.mu.Unlock()
		return err
	}
	return nil
}

func (q *FileQueue) Dequeue(ctx context.Context) (*Job, error) { return q.mem.Dequeue(ctx) }

func (q *FileQueue) Ack(id string, res Result) error {
	if err := q.mem.Ack(id, res); err != nil {
		return err
	}
	return q.append(journalRecord{V: journalVersion, Op: "settle", AtMS: q.now().UnixMilli(), ID: id, Result: &res})
}

func (q *FileQueue) Nack(id string) error { return q.mem.Nack(id) }

func (q *FileQueue) Depth() int { return q.mem.Depth() }

func (q *FileQueue) InFlight() int { return q.mem.InFlight() }

func (q *FileQueue) Close() error {
	// Stop admissions and dequeues first, then seal the file.
	_ = q.mem.Close()
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil
	}
	q.closed = true
	var ferr error
	if q.w != nil {
		ferr = q.w.Flush()
	}
	if q.f != nil {
		if err := q.f.Sync(); err != nil && ferr == nil {
			ferr = err
		}
		if err := q.f.Close(); err != nil && ferr == nil {
			ferr = err
		}
	}
	return ferr
}
