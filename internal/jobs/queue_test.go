package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"
)

func mkJob(i int) *Job {
	return &Job{
		ID:      fmt.Sprintf("j-%04d", i),
		Payload: json.RawMessage(fmt.Sprintf(`{"i":%d}`, i)),
	}
}

// TestMemQueueFIFO: jobs come out in publish order, and settling them
// empties the in-flight set.
func TestMemQueueFIFO(t *testing.T) {
	q := NewMemQueue(0)
	for i := 0; i < 5; i++ {
		if err := q.Publish(mkJob(i)); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	if d := q.Depth(); d != 5 {
		t.Fatalf("depth = %d, want 5", d)
	}
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		j, err := q.Dequeue(ctx)
		if err != nil {
			t.Fatalf("dequeue %d: %v", i, err)
		}
		if want := fmt.Sprintf("j-%04d", i); j.ID != want {
			t.Fatalf("dequeue %d = %s, want %s (FIFO violated)", i, j.ID, want)
		}
		if err := q.Ack(j.ID, Result{OK: true}); err != nil {
			t.Fatalf("ack %s: %v", j.ID, err)
		}
	}
	if q.Depth() != 0 || q.InFlight() != 0 {
		t.Fatalf("queue not empty after drain: depth %d, inflight %d", q.Depth(), q.InFlight())
	}
}

// TestMemQueueDuplicateID: a republished ID is refused, even after the
// original settled — IDs are once-ever.
func TestMemQueueDuplicateID(t *testing.T) {
	q := NewMemQueue(0)
	j := mkJob(1)
	if err := q.Publish(j); err != nil {
		t.Fatal(err)
	}
	if err := q.Publish(mkJob(1)); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("duplicate publish: %v, want ErrDuplicateID", err)
	}
	got, _ := q.Dequeue(context.Background())
	q.Ack(got.ID, Result{OK: true})
	if err := q.Publish(mkJob(1)); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("republish after settle: %v, want ErrDuplicateID", err)
	}
}

// TestMemQueueBound: the backlog bound refuses the overflow publish and
// admits again once a slot frees.
func TestMemQueueBound(t *testing.T) {
	q := NewMemQueue(2)
	if err := q.Publish(mkJob(0)); err != nil {
		t.Fatal(err)
	}
	if err := q.Publish(mkJob(1)); err != nil {
		t.Fatal(err)
	}
	if err := q.Publish(mkJob(2)); !errors.Is(err, ErrBacklogFull) {
		t.Fatalf("over-bound publish: %v, want ErrBacklogFull", err)
	}
	j, _ := q.Dequeue(context.Background())
	if err := q.Publish(mkJob(2)); err != nil {
		t.Fatalf("publish after dequeue freed a slot: %v", err)
	}
	q.Ack(j.ID, Result{OK: true})
}

// TestMemQueueNackFront: a nacked job goes to the front of the line,
// keeping its admission-order place.
func TestMemQueueNackFront(t *testing.T) {
	q := NewMemQueue(0)
	q.Publish(mkJob(0))
	q.Publish(mkJob(1))
	ctx := context.Background()
	j, _ := q.Dequeue(ctx)
	if err := q.Nack(j.ID); err != nil {
		t.Fatalf("nack: %v", err)
	}
	again, _ := q.Dequeue(ctx)
	if again.ID != j.ID {
		t.Fatalf("after nack dequeued %s, want %s back first", again.ID, j.ID)
	}
}

// TestMemQueueDequeueBlocks: an empty queue blocks Dequeue until a
// publish arrives, and honors context cancellation and Close.
func TestMemQueueDequeueBlocks(t *testing.T) {
	q := NewMemQueue(0)
	got := make(chan *Job, 1)
	go func() {
		j, err := q.Dequeue(context.Background())
		if err != nil {
			t.Errorf("dequeue: %v", err)
		}
		got <- j
	}()
	time.Sleep(20 * time.Millisecond)
	q.Publish(mkJob(7))
	select {
	case j := <-got:
		if j.ID != "j-0007" {
			t.Fatalf("dequeued %s", j.ID)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked dequeue never woke for the publish")
	}

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := q.Dequeue(ctx)
		errCh <- err
	}()
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled dequeue: %v", err)
	}

	go func() {
		_, err := q.Dequeue(context.Background())
		errCh <- err
	}()
	q.Close()
	if err := <-errCh; !errors.Is(err, ErrClosed) {
		t.Fatalf("dequeue on closed queue: %v", err)
	}
	if err := q.Publish(mkJob(9)); !errors.Is(err, ErrClosed) {
		t.Fatalf("publish on closed queue: %v", err)
	}
}

// TestQueueAckUnknown: settling a job that is not in flight is an error
// on both backends.
func TestQueueAckUnknown(t *testing.T) {
	q := NewMemQueue(0)
	if err := q.Ack("nope", Result{OK: true}); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("ack unknown: %v", err)
	}
	if err := q.Nack("nope"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("nack unknown: %v", err)
	}
}
