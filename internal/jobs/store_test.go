package jobs

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"
)

// storeClock drives a Store's injectable clock.
type storeClock struct{ t time.Time }

func (c *storeClock) now() time.Time          { return c.t }
func (c *storeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newTestStore(ttl time.Duration, capacity int) (*Store, *storeClock) {
	s := NewStore(ttl, capacity)
	c := &storeClock{t: time.Unix(1700000000, 0)}
	s.now = c.now
	return s, c
}

// TestStoreLifecycle: queued -> running -> done, with the output held.
func TestStoreLifecycle(t *testing.T) {
	s, _ := newTestStore(time.Hour, 100)
	rec, dup := s.Enqueue("a", "", "sym-dmam")
	if dup || rec.State != StateQueued {
		t.Fatalf("enqueue: %+v dup=%v", rec, dup)
	}
	s.MarkRunning("a", 1)
	if r, _ := s.Get("a"); r.State != StateRunning || r.Attempts != 1 {
		t.Fatalf("running: %+v", r)
	}
	s.Settle("a", Result{OK: true, Output: json.RawMessage(`{"ok":1}`), Attempts: 2})
	r, ok := s.Get("a")
	if !ok || r.State != StateDone || string(r.Output) != `{"ok":1}` || r.Attempts != 2 {
		t.Fatalf("done: %+v ok=%v", r, ok)
	}
	// A second settle must not overwrite the terminal record.
	s.Settle("a", Result{Error: "late", Attempts: 3})
	if r, _ := s.Get("a"); r.State != StateDone {
		t.Fatalf("terminal record overwritten: %+v", r)
	}
}

// TestStoreIdempotency: the same key returns the same record without
// minting a new job; distinct keys are independent.
func TestStoreIdempotency(t *testing.T) {
	s, _ := newTestStore(time.Hour, 100)
	first, dup := s.Enqueue("a", "key-1", "p")
	if dup {
		t.Fatal("fresh key reported dup")
	}
	again, dup := s.Enqueue("b", "key-1", "p")
	if !dup || again.ID != first.ID {
		t.Fatalf("dup submit: got %+v dup=%v, want original %s", again, dup, first.ID)
	}
	if _, ok := s.Get("b"); ok {
		t.Fatal("dup submission minted a record")
	}
	// Dedup holds through the whole lifecycle, including terminal.
	s.Settle("a", Result{OK: true, Output: json.RawMessage(`1`), Attempts: 1})
	done, dup := s.Enqueue("c", "key-1", "p")
	if !dup || done.ID != "a" || done.State != StateDone {
		t.Fatalf("dup after settle: %+v dup=%v", done, dup)
	}
	if _, dup := s.Enqueue("d", "key-2", "p"); dup {
		t.Fatal("distinct key reported dup")
	}
}

// TestStoreTTL: terminal records expire after the TTL; live ones never.
func TestStoreTTL(t *testing.T) {
	s, clock := newTestStore(time.Minute, 100)
	s.Enqueue("done", "k1", "p")
	s.Settle("done", Result{OK: true, Attempts: 1})
	s.Enqueue("live", "k2", "p")
	s.MarkRunning("live", 1)

	clock.advance(2 * time.Minute)
	if _, ok := s.Get("done"); ok {
		t.Fatal("terminal record survived past TTL")
	}
	if _, ok := s.Get("live"); !ok {
		t.Fatal("live record evicted by TTL")
	}
	// The expired record's idempotency key is released with it.
	if _, dup := s.Enqueue("done2", "k1", "p"); dup {
		t.Fatal("evicted record still deduping its key")
	}
	if s.Evicted() == 0 {
		t.Fatal("eviction not counted")
	}
}

// TestStoreCapEvictsOldestTerminal: over cap, the oldest-settled
// terminal records go first and live records are never touched.
func TestStoreCapEvictsOldestTerminal(t *testing.T) {
	s, clock := newTestStore(time.Hour, 4)
	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("t%d", i)
		s.Enqueue(id, "", "p")
		s.Settle(id, Result{OK: true, Attempts: 1})
		clock.advance(time.Second)
	}
	s.Enqueue("live", "", "p")
	if s.Len() != 5 {
		t.Fatalf("len = %d before sweep trigger", s.Len())
	}
	// Next mutation sweeps: cap 4, so the oldest terminal (t0) goes.
	s.Enqueue("x", "", "p")
	if _, ok := s.Get("t0"); ok {
		t.Fatal("oldest terminal record survived cap eviction")
	}
	if _, ok := s.Get("t3"); !ok {
		t.Fatal("newest terminal record evicted before older ones")
	}
	if _, ok := s.Get("live"); !ok {
		t.Fatal("live record evicted to satisfy cap")
	}
}

// TestStoreAdopt: replayed records keep their terminal state, stamps,
// and idempotency mapping.
func TestStoreAdopt(t *testing.T) {
	s, clock := newTestStore(time.Hour, 100)
	// The stamp must be within TTL of the store's clock, or the sweep
	// (correctly) drops the adopted record as expired.
	stamp := clock.now().Add(-time.Minute).UnixMilli()
	s.Adopt(Record{ID: "r1", Key: "k", State: StateDone, Output: json.RawMessage(`2`), Attempts: 3, SettledMS: stamp})
	r, ok := s.Get("r1")
	if !ok || r.State != StateDone || r.SettledMS != stamp {
		t.Fatalf("adopted: %+v ok=%v", r, ok)
	}
	if got, dup := s.Enqueue("new", "k", "p"); !dup || got.ID != "r1" {
		t.Fatalf("adopted key not deduping: %+v dup=%v", got, dup)
	}
}
