package jobs

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"dip/internal/stats"
)

// RunFunc executes one job attempt: payload in, output out. The service
// decodes a dip.Request from the payload, runs it on the pooled engine,
// and encodes the dip-report/v1 answer. The pool contains panics, so a
// RunFunc may fault without taking a worker down.
type RunFunc func(ctx context.Context, payload json.RawMessage) (json.RawMessage, error)

// PoolConfig shapes a worker pool.
type PoolConfig struct {
	// Workers is the number of concurrent drain goroutines. Zero is a
	// valid, useful configuration: ingest-only — jobs are accepted and
	// journaled now, processed by a later boot with workers.
	Workers int
	// Run executes one attempt.
	Run RunFunc
	// Retryable classifies attempt errors: true means try again (up to
	// MaxAttempts), false means the failure is permanent (e.g. a
	// malformed request — no retry will fix the client's payload). Nil
	// retries everything.
	Retryable func(error) bool
	// MaxAttempts bounds attempts per job; past it the job parks in the
	// poison lane. Minimum 1; 0 picks the default.
	MaxAttempts int
	// AttemptTimeout bounds one attempt; 0 means no per-attempt bound.
	AttemptTimeout time.Duration
	// BaseBackoff/MaxBackoff shape the exponential retry delay:
	// base<<(attempt-1), capped at max, plus deterministic jitter in
	// [0, delay/2). Zeros pick defaults.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed keys the jitter stream so a pool's retry schedule is
	// reproducible.
	Seed int64
	// Store, when set, receives running/settled state transitions.
	Store *Store
	// Metrics, when set, is updated by the pool and its queue wrappers.
	Metrics *Metrics
}

// Defaults for PoolConfig zero values.
const (
	DefaultMaxAttempts = 4
	DefaultBaseBackoff = 50 * time.Millisecond
	DefaultMaxBackoff  = 5 * time.Second
)

// Pool drains a queue through RunFunc with bounded retries. Stop is
// drain-shaped: in-flight attempts finish, backoff waits are cut short
// and the waiting job is nacked back to the queue (with a durable
// backend it then survives to the next boot).
type Pool struct {
	cfg  PoolConfig
	q    Queue
	ctx  context.Context
	stop context.CancelFunc
	wg   sync.WaitGroup
}

// NewPool builds a pool over q. Call Start to begin draining.
func NewPool(q Queue, cfg PoolConfig) *Pool {
	if cfg.Workers < 0 {
		cfg.Workers = 0
	}
	if cfg.MaxAttempts < 1 {
		cfg.MaxAttempts = DefaultMaxAttempts
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = DefaultBaseBackoff
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = DefaultMaxBackoff
	}
	if cfg.Retryable == nil {
		cfg.Retryable = func(error) bool { return true }
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Pool{cfg: cfg, q: q, ctx: ctx, stop: cancel}
}

// Start launches the workers.
func (p *Pool) Start() {
	for i := 0; i < p.cfg.Workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
}

// Stop drains the pool: running attempts finish (their per-attempt
// timeout still applies), backoff sleeps abort and nack their job, and
// every worker exits before Stop returns. The queue itself stays open —
// close it after Stop so late acks are journaled.
func (p *Pool) Stop() {
	p.stop()
	p.wg.Wait()
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		j, err := p.q.Dequeue(p.ctx)
		if err != nil {
			return // pool stopping or queue closed
		}
		p.process(j)
	}
}

// process runs one job to a settle or a nack. The retry loop stays on
// this worker: between attempts it sleeps the backoff, and if the pool
// stops mid-sleep the job is nacked so it re-queues (and, durably,
// replays next boot) instead of losing its place.
func (p *Pool) process(j *Job) {
	m := p.cfg.Metrics
	if m != nil {
		m.InFlight.Add(1)
		defer m.InFlight.Add(-1)
	}
	for attempt := 1; ; attempt++ {
		if p.cfg.Store != nil {
			p.cfg.Store.MarkRunning(j.ID, attempt)
		}
		out, err := p.attempt(j)
		if err == nil {
			p.settle(j, Result{OK: true, Output: out, Attempts: attempt})
			if m != nil {
				m.Completed.Add(1)
			}
			return
		}
		if !p.cfg.Retryable(err) {
			p.settle(j, Result{Error: err.Error(), Attempts: attempt})
			if m != nil {
				m.Failed.Add(1)
			}
			return
		}
		if attempt >= p.cfg.MaxAttempts {
			// Poison lane: the job keeps failing retryably; park it with
			// its last error instead of burning workers forever.
			p.settle(j, Result{Error: err.Error(), Parked: true, Attempts: attempt})
			if m != nil {
				m.Parked.Add(1)
			}
			return
		}
		if m != nil {
			m.Retries.Add(1)
		}
		delay := retryDelay(p.cfg.Seed, j.ID, attempt, p.cfg.BaseBackoff, p.cfg.MaxBackoff)
		t := time.NewTimer(delay)
		select {
		case <-t.C:
		case <-p.ctx.Done():
			t.Stop()
			// Draining mid-backoff: give the job back. It re-runs from
			// attempt 1 later — attempts are not persisted, which errs
			// toward retrying, never toward losing work.
			if nerr := p.q.Nack(j.ID); nerr == nil {
				if p.cfg.Store != nil {
					p.cfg.Store.MarkQueued(j.ID)
				}
			}
			return
		}
	}
}

// attempt executes one bounded, panic-contained run.
func (p *Pool) attempt(j *Job) (out json.RawMessage, err error) {
	ctx := p.ctx
	if p.cfg.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.cfg.AttemptTimeout)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			if m := p.cfg.Metrics; m != nil {
				m.Panics.Add(1)
			}
			err = fmt.Errorf("jobs: attempt panicked: %v", r)
		}
	}()
	return p.cfg.Run(ctx, j.Payload)
}

func (p *Pool) settle(j *Job, res Result) {
	if p.cfg.Store != nil {
		p.cfg.Store.Settle(j.ID, res)
	}
	// Ack after the store knows the outcome: a crash between the two
	// re-runs the job (at-least-once), never strands a settled ack with
	// no stored result.
	if err := p.q.Ack(j.ID, res); err != nil && p.cfg.Metrics != nil {
		p.cfg.Metrics.AckErrors.Add(1)
	}
}

// retryDelay is the backoff schedule: base<<(attempt-1) capped at max,
// plus a deterministic jitter in [0, delay/2) keyed by (seed, job,
// attempt) — two pools with the same seed retry on the same schedule,
// and two jobs in one pool never thundering-herd the same instant.
func retryDelay(seed int64, jobID string, attempt int, base, max time.Duration) time.Duration {
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	h := fnv.New64a()
	h.Write([]byte(jobID))
	mixed := stats.DeriveSeed(seed, int64(h.Sum64())^int64(attempt))
	if half := int64(d / 2); half > 0 {
		jitter := mixed % half
		if jitter < 0 {
			jitter += half
		}
		d += time.Duration(jitter)
	}
	return d
}
