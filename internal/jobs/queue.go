// Package jobs is the durable async job tier: a small Publisher/Consumer
// queue abstraction with swappable backends (in-memory, file-backed
// journal), a worker pool that drains it with bounded retries and a
// poison lane, and a TTL-bounded result store with idempotency-key
// dedup. cmd/dipserve wires it behind POST /v1/jobs for proofs too
// heavy for the synchronous 503-when-full admission queue: the backlog
// may be arbitrary, workers may crash, and with the file backend the
// whole process may be SIGKILL'd — on restart the journal replays the
// backlog exactly where it stood.
//
// The payload is opaque bytes end to end: the queue never interprets
// it, so the tier has no dependency on the protocol engine and can
// carry any unit of work.
package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
)

// Job is one queued unit of work. The queue owns ID uniqueness checks;
// the caller mints IDs (the service derives them from a boot stamp and
// a sequence number so they stay unique across restarts).
type Job struct {
	// ID identifies the job everywhere: queue, journal, store, API.
	ID string `json:"id"`
	// Key is the client's idempotency key, empty when none was given.
	// The queue itself does not dedup on it — the Store does — but the
	// journal persists it so dedup survives a restart.
	Key string `json:"key,omitempty"`
	// Payload is the opaque work description (a dip.Request document at
	// the service).
	Payload json.RawMessage `json:"payload"`
}

// Result is the terminal outcome of a job, recorded by Ack.
type Result struct {
	// OK reports success; Output then holds the job's product (a
	// dip-report/v1 document at the service).
	OK     bool            `json:"ok"`
	Output json.RawMessage `json:"output,omitempty"`
	// Error is the failure description when !OK.
	Error string `json:"error,omitempty"`
	// Parked marks a poison job: every attempt failed retryably until
	// the attempt budget ran out, so the job was parked rather than
	// retried forever. Parked implies !OK.
	Parked bool `json:"parked,omitempty"`
	// Attempts is how many run attempts the job consumed.
	Attempts int `json:"attempts,omitempty"`
}

// Publisher is the enqueue half of a queue.
type Publisher interface {
	// Publish adds a job to the backlog. It fails on duplicate IDs, a
	// closed queue, or a full backlog (ErrBacklogFull).
	Publish(j *Job) error
}

// Consumer is the dequeue-and-settle half of a queue. A dequeued job is
// in flight until the consumer settles it with exactly one Ack or
// returns it with Nack; a durable backend persists only Publish and Ack,
// so an in-flight job that is never settled (worker crash, process
// death) replays as pending on the next open.
type Consumer interface {
	// Dequeue blocks for the next pending job until ctx is done
	// (returning ctx.Err()) or the queue closes (returning ErrClosed).
	Dequeue(ctx context.Context) (*Job, error)
	// Ack settles an in-flight job with its terminal result.
	Ack(id string, res Result) error
	// Nack returns an in-flight job to the front of the backlog (the
	// attempt did not complete; someone else may pick it up).
	Nack(id string) error
}

// Queue is a swappable job-queue backend.
type Queue interface {
	Publisher
	Consumer
	// Depth is the current pending backlog (excluding in-flight jobs).
	Depth() int
	// InFlight is the number of dequeued-but-unsettled jobs.
	InFlight() int
	// Close shuts the queue: Dequeue returns ErrClosed, Publish fails.
	// In-flight jobs may still be settled (a durable backend records
	// those late acks before releasing the journal).
	Close() error
}

var (
	// ErrClosed is returned by queue operations after Close.
	ErrClosed = errors.New("jobs: queue closed")
	// ErrBacklogFull rejects a Publish that would grow the pending
	// backlog past the queue's bound.
	ErrBacklogFull = errors.New("jobs: backlog full")
	// ErrDuplicateID rejects a Publish whose ID is already known.
	ErrDuplicateID = errors.New("jobs: duplicate job id")
	// ErrUnknownJob is returned by Ack/Nack for an ID not in flight.
	ErrUnknownJob = errors.New("jobs: unknown or not in-flight job id")
)

// MemQueue is the in-memory backend: a FIFO backlog under one mutex.
// Nothing survives the process — it is the right backend when clients
// can resubmit, and the reference semantics the file backend must match.
type MemQueue struct {
	mu       sync.Mutex
	cond     *sync.Cond
	pending  []*Job
	inflight map[string]*Job
	seen     map[string]bool // every ID ever published (duplicate guard)
	bound    int
	closed   bool
}

// NewMemQueue builds an in-memory queue holding at most bound pending
// jobs (0 means a default generous bound).
func NewMemQueue(bound int) *MemQueue {
	if bound <= 0 {
		bound = DefaultBacklogBound
	}
	q := &MemQueue{
		inflight: make(map[string]*Job),
		seen:     make(map[string]bool),
		bound:    bound,
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// DefaultBacklogBound caps the pending backlog when the caller does not
// choose one: large enough for any realistic sweep, small enough that a
// submission storm cannot grow process memory without bound.
const DefaultBacklogBound = 65536

func (q *MemQueue) Publish(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	if q.seen[j.ID] {
		return ErrDuplicateID
	}
	if len(q.pending) >= q.bound {
		return ErrBacklogFull
	}
	q.seen[j.ID] = true
	q.pending = append(q.pending, j)
	q.cond.Signal()
	return nil
}

func (q *MemQueue) Dequeue(ctx context.Context) (*Job, error) {
	// cond.Wait cannot watch ctx, so a helper goroutine pokes the cond
	// when the context ends; the loop re-checks ctx on every wakeup.
	stop := context.AfterFunc(ctx, func() {
		q.mu.Lock()
		q.cond.Broadcast()
		q.mu.Unlock()
	})
	defer stop()

	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if q.closed {
			return nil, ErrClosed
		}
		if len(q.pending) > 0 {
			j := q.pending[0]
			q.pending = q.pending[1:]
			q.inflight[j.ID] = j
			return j, nil
		}
		q.cond.Wait()
	}
}

func (q *MemQueue) Ack(id string, _ Result) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, ok := q.inflight[id]; !ok {
		return ErrUnknownJob
	}
	delete(q.inflight, id)
	return nil
}

func (q *MemQueue) Nack(id string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.inflight[id]
	if !ok {
		return ErrUnknownJob
	}
	delete(q.inflight, id)
	// Front of the backlog: a nacked job was admitted before everything
	// pending, so it keeps its place in line.
	q.pending = append([]*Job{j}, q.pending...)
	q.cond.Signal()
	return nil
}

func (q *MemQueue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending)
}

func (q *MemQueue) InFlight() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.inflight)
}

func (q *MemQueue) Close() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
	return nil
}
