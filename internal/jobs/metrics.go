package jobs

import "dip/internal/obs"

// Metrics is the job tier's metering surface: populated by the pool and
// the service wiring, snapshotted onto /metrics. The zero value is
// ready to use.
type Metrics struct {
	// Enqueued counts accepted submissions (journal replays excluded);
	// IdemHits counts submissions deduplicated by idempotency key.
	Enqueued obs.Counter
	IdemHits obs.Counter
	// Completed/Failed/Parked partition terminal jobs: success,
	// permanent failure, poison lane.
	Completed obs.Counter
	Failed    obs.Counter
	Parked    obs.Counter
	// Retries counts re-attempts; Panics counts contained attempt
	// panics; AckErrors counts settles the queue refused (a bug or a
	// closed journal during the last breath of a drain).
	Retries   obs.Counter
	Panics    obs.Counter
	AckErrors obs.Counter
	// Replayed counts jobs re-enqueued from the journal at boot;
	// ReplayedSettled counts terminal results recovered at boot.
	Replayed        obs.Counter
	ReplayedSettled obs.Counter
	// InFlight is the number of jobs currently held by workers
	// (attempting or backing off).
	InFlight obs.Gauge
}

// MetricsSnapshot is the JSON shape of a Metrics plus the live queue
// and store readings the tier composes at snapshot time.
type MetricsSnapshot struct {
	Enqueued        int64 `json:"enqueued"`
	IdemHits        int64 `json:"idempotency_hits"`
	Completed       int64 `json:"completed"`
	Failed          int64 `json:"failed"`
	Parked          int64 `json:"parked"`
	Retries         int64 `json:"retries"`
	Panics          int64 `json:"panics"`
	AckErrors       int64 `json:"ack_errors"`
	Replayed        int64 `json:"replayed"`
	ReplayedSettled int64 `json:"replayed_settled"`
	InFlight        int64 `json:"in_flight"`
	Depth           int64 `json:"queue_depth"`
	Stored          int64 `json:"stored_records"`
	StoreEvicted    int64 `json:"store_evicted"`
	Workers         int   `json:"workers"`
	Durable         bool  `json:"durable"`
}

// Snapshot composes the counters with queue depth and store occupancy.
func (m *Metrics) Snapshot(q Queue, st *Store, workers int, durable bool) MetricsSnapshot {
	s := MetricsSnapshot{
		Enqueued:        m.Enqueued.Value(),
		IdemHits:        m.IdemHits.Value(),
		Completed:       m.Completed.Value(),
		Failed:          m.Failed.Value(),
		Parked:          m.Parked.Value(),
		Retries:         m.Retries.Value(),
		Panics:          m.Panics.Value(),
		AckErrors:       m.AckErrors.Value(),
		Replayed:        m.Replayed.Value(),
		ReplayedSettled: m.ReplayedSettled.Value(),
		InFlight:        m.InFlight.Value(),
		Workers:         workers,
		Durable:         durable,
	}
	if q != nil {
		s.Depth = int64(q.Depth())
	}
	if st != nil {
		s.Stored = int64(st.Len())
		s.StoreEvicted = st.Evicted()
	}
	return s
}
