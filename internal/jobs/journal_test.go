package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dip/internal/faults"
)

func openTestQueue(t *testing.T, path string) *FileQueue {
	t.Helper()
	q, err := OpenFileQueue(path, 0, 0)
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	return q
}

// TestFileQueueReplay is the crash-replay contract: publish a backlog,
// settle part of it, drop the queue without closing (SIGKILL), reopen —
// the unsettled jobs replay pending in order, the settled ones come back
// as results, and nothing runs twice.
func TestFileQueueReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	q := openTestQueue(t, path)
	ctx := context.Background()
	for i := 0; i < 6; i++ {
		if err := q.Publish(mkJob(i)); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	// Settle the first two, leave one in flight (dequeued, never acked),
	// and three pending.
	for i := 0; i < 2; i++ {
		j, _ := q.Dequeue(ctx)
		out := json.RawMessage(fmt.Sprintf(`{"ran":%q}`, j.ID))
		if err := q.Ack(j.ID, Result{OK: true, Output: out, Attempts: 1}); err != nil {
			t.Fatalf("ack: %v", err)
		}
	}
	if _, err := q.Dequeue(ctx); err != nil {
		t.Fatal(err)
	}
	// No Close: the process dies here.

	q2 := openTestQueue(t, path)
	stats, settled := q2.Replayed()
	if stats.Pending != 4 {
		t.Fatalf("replayed pending = %d, want 4 (3 queued + 1 in-flight at crash)", stats.Pending)
	}
	if stats.Settled != 2 || len(settled) != 2 {
		t.Fatalf("replayed settled = %d (%d records), want 2", stats.Settled, len(settled))
	}
	if stats.TruncatedBytes != 0 {
		t.Fatalf("clean journal reported %d truncated bytes", stats.TruncatedBytes)
	}
	for i, s := range settled {
		if want := fmt.Sprintf("j-%04d", i); s.Job.ID != want {
			t.Fatalf("settled[%d] = %s, want %s", i, s.Job.ID, want)
		}
		if !s.Result.OK || !strings.Contains(string(s.Result.Output), s.Job.ID) {
			t.Fatalf("settled[%d] lost its result: %+v", i, s.Result)
		}
	}
	// Pending order: the in-flight job (j-0002) was enqueued before
	// j-0003..5, so it replays first.
	for i := 2; i < 6; i++ {
		j, err := q2.Dequeue(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("j-%04d", i); j.ID != want {
			t.Fatalf("replayed dequeue = %s, want %s", j.ID, want)
		}
		if err := q2.Ack(j.ID, Result{OK: true, Attempts: 1}); err != nil {
			t.Fatal(err)
		}
	}
	// Settled IDs must stay refused after replay: a client retrying a
	// completed job cannot re-run it.
	if err := q2.Publish(mkJob(0)); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("republish of settled job after replay: %v, want ErrDuplicateID", err)
	}
	if err := q2.Close(); err != nil {
		t.Fatal(err)
	}

	// A third open finds everything settled: nothing pending.
	q3 := openTestQueue(t, path)
	stats3, settled3 := q3.Replayed()
	if stats3.Pending != 0 || stats3.Settled != 6 || len(settled3) != 6 {
		t.Fatalf("third open: %+v with %d settled, want 0 pending / 6 settled", stats3, len(settled3))
	}
	q3.Close()
}

// TestFileQueueTornTail: a SIGKILL mid-write leaves a partial record;
// replay recovers the prefix and reports the cut.
func TestFileQueueTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	q := openTestQueue(t, path)
	for i := 0; i < 3; i++ {
		if err := q.Publish(mkJob(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	if err := faults.TruncateJournalTail(path, 7); err != nil {
		t.Fatalf("truncating: %v", err)
	}

	q2 := openTestQueue(t, path)
	stats, _ := q2.Replayed()
	if stats.Pending != 2 {
		t.Fatalf("pending after torn tail = %d, want 2 (the torn enq is lost)", stats.Pending)
	}
	if stats.TruncatedBytes == 0 {
		t.Fatal("torn tail not reported")
	}
	// The lost job's client never saw a 202: resubmission must be
	// accepted, not refused as a duplicate.
	if err := q2.Publish(mkJob(2)); err != nil {
		t.Fatalf("resubmitting the torn job: %v", err)
	}
	q2.Close()
}

// TestFileQueueGarbledTail: garbage bytes at the tail (torn write that
// left data) stop replay without error and are compacted away.
func TestFileQueueGarbledTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	q := openTestQueue(t, path)
	for i := 0; i < 4; i++ {
		q.Publish(mkJob(i))
	}
	q.Close()
	if err := faults.GarbleJournalTail(path, 42, 11); err != nil {
		t.Fatal(err)
	}
	q2 := openTestQueue(t, path)
	stats, _ := q2.Replayed()
	if stats.Pending != 3 {
		t.Fatalf("pending after garbled tail = %d, want 3", stats.Pending)
	}
	if stats.TruncatedBytes == 0 {
		t.Fatal("garbled tail not reported as truncated")
	}
	q2.Close()
	// Compaction rewrote the file: a fresh open sees a clean journal.
	q3 := openTestQueue(t, path)
	stats3, _ := q3.Replayed()
	if stats3.TruncatedBytes != 0 {
		t.Fatalf("compacted journal still torn: %+v", stats3)
	}
	q3.Close()
}

// TestFileQueueCompactionExpiry: settled records older than the retain
// bound are dropped at open; younger ones survive.
func TestFileQueueCompactionExpiry(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	q := openTestQueue(t, path)
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		q.Publish(mkJob(i))
		j, _ := q.Dequeue(ctx)
		q.Ack(j.ID, Result{OK: true, Attempts: 1})
	}
	q.Close()

	// Rewrite the first settle's stamp into the deep past by reopening
	// with a retain window and a clock far in the future for record 0
	// only: simplest is to edit the file — but records are opaque here,
	// so instead reopen with retain long enough to keep both, then with
	// a tiny retain after aging.
	q2, err := OpenFileQueue(path, 0, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	stats, _ := q2.Replayed()
	if stats.Settled != 2 || stats.Expired != 0 {
		t.Fatalf("fresh settles: %+v, want 2 settled, 0 expired", stats)
	}
	q2.Close()

	q3 := &FileQueue{mem: NewMemQueue(0), path: path, now: func() time.Time { return time.Now().Add(48 * time.Hour) }}
	if err := q3.openAndReplay(time.Hour); err != nil {
		t.Fatal(err)
	}
	stats3, settled3 := q3.Replayed()
	if stats3.Settled != 0 || stats3.Expired != 2 || len(settled3) != 0 {
		t.Fatalf("aged settles: %+v, want all expired", stats3)
	}
	q3.Close()
}

// TestFileQueueReplayOverBound: a replayed backlog larger than the
// bound is never dropped — the bound gates new admissions only.
func TestFileQueueReplayOverBound(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	q, err := OpenFileQueue(path, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := q.Publish(mkJob(i)); err != nil {
			t.Fatal(err)
		}
	}
	q.Close()

	q2, err := OpenFileQueue(path, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	stats, _ := q2.Replayed()
	if stats.Pending != 8 {
		t.Fatalf("replay dropped jobs to honor the bound: pending %d, want 8", stats.Pending)
	}
	if err := q2.Publish(mkJob(100)); !errors.Is(err, ErrBacklogFull) {
		t.Fatalf("new admission over bound: %v, want ErrBacklogFull", err)
	}
	q2.Close()
}

// TestFileQueueJournalBounded: the journal compacts at open — after a
// large settled history expires, the file shrinks instead of growing
// with lifetime throughput.
func TestFileQueueJournalBounded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	q := openTestQueue(t, path)
	ctx := context.Background()
	for i := 0; i < 200; i++ {
		q.Publish(mkJob(i))
		j, _ := q.Dequeue(ctx)
		q.Ack(j.ID, Result{OK: true, Output: json.RawMessage(`{"x":1}`), Attempts: 1})
	}
	q.Close()
	grown, _ := os.Stat(path)

	q2 := &FileQueue{mem: NewMemQueue(0), path: path, now: func() time.Time { return time.Now().Add(48 * time.Hour) }}
	if err := q2.openAndReplay(time.Hour); err != nil {
		t.Fatal(err)
	}
	q2.Close()
	compacted, _ := os.Stat(path)
	if compacted.Size() >= grown.Size() {
		t.Fatalf("journal did not compact: %d -> %d bytes", grown.Size(), compacted.Size())
	}
	if compacted.Size() != 0 {
		t.Fatalf("fully-expired journal should be empty, is %d bytes", compacted.Size())
	}
}
