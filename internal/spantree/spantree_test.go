package spantree

import (
	"math/rand"
	"sort"
	"testing"

	"dip/internal/graph"
	"dip/internal/wire"
)

// verifyAll runs every node's local test against the given advice on g.
func verifyAll(g *graph.Graph, advice []Advice) []bool {
	out := make([]bool, g.N())
	for v := 0; v < g.N(); v++ {
		neighbors := map[int]Advice{}
		for _, u := range g.Neighbors(v) {
			neighbors[u] = advice[u]
		}
		isNeighbor := func(u int) bool { return g.HasEdge(v, u) }
		out[v] = VerifyLocal(v, advice[v], neighbors, isNeighbor)
	}
	return out
}

func allTrue(b []bool) bool {
	for _, x := range b {
		if !x {
			return false
		}
	}
	return true
}

func TestHonestAdviceAccepted(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	graphs := []*graph.Graph{
		graph.Path(8),
		graph.Cycle(9),
		graph.Complete(5),
		graph.ConnectedGNP(20, 0.3, rng),
		graph.RandomTree(15, rng),
		graph.New(1),
	}
	for gi, g := range graphs {
		for root := 0; root < g.N(); root += 3 {
			advice, err := Compute(g, root)
			if err != nil {
				t.Fatalf("graph %d root %d: %v", gi, root, err)
			}
			if !allTrue(verifyAll(g, advice)) {
				t.Fatalf("graph %d root %d: honest advice rejected", gi, root)
			}
		}
	}
}

func TestComputeDisconnected(t *testing.T) {
	if _, err := Compute(graph.New(3), 0); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

func TestBadAdviceRejected(t *testing.T) {
	g := graph.Path(6)
	advice, err := Compute(g, 0)
	if err != nil {
		t.Fatal(err)
	}

	mutations := []struct {
		name   string
		mutate func(a []Advice)
	}{
		{"wrong root at one node", func(a []Advice) { a[3].Root = 5 }},
		{"non-neighbor parent", func(a []Advice) { a[3].Parent = 0 }},
		{"distance off by one", func(a []Advice) { a[3].Dist++ }},
		{"root nonzero distance", func(a []Advice) { a[0].Dist = 1 }},
		{"root not own parent", func(a []Advice) { a[0].Parent = 1 }},
		{"cycle via two roots", func(a []Advice) {
			// Claim two different roots in different parts.
			for v := 3; v < 6; v++ {
				a[v].Root = 5
			}
		}},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			bad := append([]Advice(nil), advice...)
			m.mutate(bad)
			if allTrue(verifyAll(g, bad)) {
				t.Fatal("mutated advice accepted by all nodes")
			}
		})
	}
}

func TestForgedTreeOnCycle(t *testing.T) {
	// On a cycle, advice that makes parent pointers go around in a loop
	// must be rejected: distances cannot strictly decrease around a cycle.
	g := graph.Cycle(5)
	advice := make([]Advice, 5)
	for v := 0; v < 5; v++ {
		advice[v] = Advice{Root: 0, Parent: (v + 4) % 5, Dist: v}
	}
	// Node 0: parent 4, dist 0 — but it IS the claimed root, so parent
	// must be itself: rejected there; also edge 4->0 has dist 4 -> 0.
	if allTrue(verifyAll(g, advice)) {
		t.Fatal("cyclic parent pointers accepted")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	n := 37
	a := Advice{Root: 36, Parent: 12, Dist: 20}
	var w wire.Writer
	a.Encode(&w, n)
	if w.Len() != Bits(n) {
		t.Fatalf("encoded %d bits, want %d", w.Len(), Bits(n))
	}
	got, err := Decode(wire.NewReader(w.Message()), n)
	if err != nil {
		t.Fatal(err)
	}
	if got != a {
		t.Fatalf("round trip: %+v != %+v", got, a)
	}
}

func TestDecodeShort(t *testing.T) {
	var w wire.Writer
	w.WriteInt(1, 3)
	if _, err := Decode(wire.NewReader(w.Message()), 37); err == nil {
		t.Fatal("short advice accepted")
	}
}

func TestBitsIsLogarithmic(t *testing.T) {
	if Bits(256) != 24 || Bits(1024) != 30 {
		t.Fatalf("Bits(256)=%d Bits(1024)=%d", Bits(256), Bits(1024))
	}
}

func TestChildren(t *testing.T) {
	g := graph.Star(5) // center 0
	advice, err := Compute(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	neighbors := map[int]Advice{}
	for _, u := range g.Neighbors(0) {
		neighbors[u] = advice[u]
	}
	kids := Children(0, neighbors)
	sort.Ints(kids)
	if len(kids) != 4 {
		t.Fatalf("children of center = %v", kids)
	}
	// A leaf has no children.
	leafNeighbors := map[int]Advice{0: advice[0]}
	if got := Children(1, leafNeighbors); len(got) != 0 {
		t.Fatalf("children of leaf = %v", got)
	}
}

func TestChildListsAndPostOrder(t *testing.T) {
	g := graph.Path(5)
	advice, err := Compute(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	children := ChildLists(advice)
	sort.Ints(children[2])
	if len(children[2]) != 2 {
		t.Fatalf("children of root = %v", children[2])
	}

	order := PostOrder(advice)
	if len(order) != 5 {
		t.Fatalf("post order has %d entries", len(order))
	}
	pos := make(map[int]int, 5)
	for i, v := range order {
		pos[v] = i
	}
	// Children must come before parents.
	for v, a := range advice {
		if a.Parent != v && pos[v] > pos[a.Parent] {
			t.Fatalf("node %d after its parent %d in post order", v, a.Parent)
		}
	}
	// The root is last.
	if order[len(order)-1] != 2 {
		t.Fatalf("root not last: %v", order)
	}
}
