// Package spantree implements the spanning-tree proof-labeling scheme of
// Korman, Kutten and Peleg ("Proof labeling schemes", Distributed Computing
// 2010) — reference [23] of the paper — which every protocol in this module
// uses as a building block: the prover describes a spanning tree by giving
// each node its parent and its distance from the root, and purely local
// checks guarantee global tree-ness.
//
// The scheme: each node v receives advice (root, parent t_v, distance d_v).
// Node v accepts iff
//
//   - its root field equals each neighbor's root field (so, on a connected
//     graph, all nodes agree on the root);
//   - if v is the root: t_v = v and d_v = 0;
//   - otherwise: t_v ∈ N(v) and d_{t_v} = d_v - 1.
//
// If every node accepts, the parent pointers form a spanning tree rooted at
// the agreed root: distances strictly decrease along parent pointers, so
// following them from any node must terminate at the root. The advice is
// 3·ceil(log2 n) bits — the Θ(log n) of [23].
package spantree

import (
	"fmt"

	"dip/internal/graph"
	"dip/internal/wire"
)

// Advice is one node's spanning-tree label.
type Advice struct {
	Root   int // the root all nodes must agree on
	Parent int // v's parent in the tree; the root is its own parent
	Dist   int // v's distance from the root
}

// Bits returns the exact advice length in bits for an n-vertex graph.
func Bits(n int) int {
	return 3 * wire.WidthFor(n)
}

// Encode appends the advice to w using exactly Bits(n) bits.
func (a Advice) Encode(w *wire.Writer, n int) {
	width := wire.WidthFor(n)
	w.WriteInt(a.Root, width)
	w.WriteInt(a.Parent, width)
	w.WriteInt(a.Dist, width)
}

// Decode reads advice written by Encode.
func Decode(r *wire.Reader, n int) (Advice, error) {
	width := wire.WidthFor(n)
	var a Advice
	var err error
	if a.Root, err = r.ReadInt(width); err != nil {
		return Advice{}, fmt.Errorf("spantree root: %w", err)
	}
	if a.Parent, err = r.ReadInt(width); err != nil {
		return Advice{}, fmt.Errorf("spantree parent: %w", err)
	}
	if a.Dist, err = r.ReadInt(width); err != nil {
		return Advice{}, fmt.Errorf("spantree dist: %w", err)
	}
	return a, nil
}

// Compute returns the honest advice for every node: a BFS tree of g rooted
// at root. It fails if g is not connected.
func Compute(g *graph.Graph, root int) ([]Advice, error) {
	parent, dist, err := g.BFSTree(root)
	if err != nil {
		return nil, err
	}
	advice := make([]Advice, g.N())
	for v := range advice {
		advice[v] = Advice{Root: root, Parent: parent[v], Dist: dist[v]}
	}
	return advice, nil
}

// VerifyLocal runs node v's local acceptance test given its own advice and
// its neighbors' advice (keyed by neighbor id). isNeighbor must report
// membership in N(v).
func VerifyLocal(v int, mine Advice, neighbors map[int]Advice, isNeighbor func(u int) bool) bool {
	for _, a := range neighbors {
		if a.Root != mine.Root {
			return false
		}
	}
	if v == mine.Root {
		return mine.Parent == v && mine.Dist == 0
	}
	if !isNeighbor(mine.Parent) {
		return false
	}
	pa, ok := neighbors[mine.Parent]
	if !ok {
		return false
	}
	return pa.Dist == mine.Dist-1
}

// Children returns the tree children of v among its neighbors: the
// neighbors whose parent pointer is v. This is the set C(v) of Protocols 1
// and 2.
func Children(v int, neighbors map[int]Advice) []int {
	var out []int
	for u, a := range neighbors {
		if a.Parent == u {
			// the root points to itself; it is nobody's child
			continue
		}
		if a.Parent == v {
			out = append(out, u)
		}
	}
	return out
}

// ChildLists derives, for the honest prover, the children of every node
// from a full advice assignment.
func ChildLists(advice []Advice) [][]int {
	children := make([][]int, len(advice))
	for v, a := range advice {
		if a.Parent != v {
			children[a.Parent] = append(children[a.Parent], v)
		}
	}
	return children
}

// PostOrder returns the vertices of the tree described by advice in
// post-order (children before parents), which is the evaluation order for
// subtree aggregates like the hash sums of Protocol 1.
func PostOrder(advice []Advice) []int {
	children := ChildLists(advice)
	root := -1
	for v, a := range advice {
		if a.Parent == v {
			root = v
			break
		}
	}
	order := make([]int, 0, len(advice))
	var visit func(v int)
	visit = func(v int) {
		for _, c := range children[v] {
			visit(c)
		}
		order = append(order, v)
	}
	if root >= 0 {
		visit(root)
	}
	return order
}
