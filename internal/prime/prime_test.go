package prime

import (
	"math/big"
	"testing"
)

func TestFactorial(t *testing.T) {
	cases := []struct {
		n    int
		want int64
	}{{0, 1}, {1, 1}, {2, 2}, {5, 120}, {10, 3628800}}
	for _, c := range cases {
		if got := Factorial(c.n); got.Int64() != c.want {
			t.Errorf("Factorial(%d) = %v, want %d", c.n, got, c.want)
		}
	}
	// 20! = 2432902008176640000 still fits in int64.
	if got := Factorial(20); got.Int64() != 2432902008176640000 {
		t.Errorf("Factorial(20) = %v", got)
	}
}

func TestInWindowFindsPrime(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		p, err := InWindow(big.NewInt(100), big.NewInt(200), seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !IsPrime(p) {
			t.Fatalf("seed %d: %v not prime", seed, p)
		}
		if p.Cmp(big.NewInt(100)) < 0 || p.Cmp(big.NewInt(200)) > 0 {
			t.Fatalf("seed %d: %v outside window", seed, p)
		}
	}
}

func TestInWindowTiny(t *testing.T) {
	p, err := InWindow(big.NewInt(2), big.NewInt(2), 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Int64() != 2 {
		t.Fatalf("got %v, want 2", p)
	}
}

func TestInWindowNoPrime(t *testing.T) {
	// [24, 28] contains no prime.
	if _, err := InWindow(big.NewInt(24), big.NewInt(28), 3); err == nil {
		t.Fatal("expected no-prime error")
	}
	if _, err := InWindow(big.NewInt(10), big.NewInt(5), 0); err == nil {
		t.Fatal("expected empty-window error")
	}
	if _, err := InWindow(big.NewInt(0), big.NewInt(1), 0); err == nil {
		t.Fatal("expected below-2 error")
	}
}

func TestForCubicWindow(t *testing.T) {
	for _, n := range []int{1, 2, 8, 64, 256} {
		p, err := ForCubicWindow(n, 1)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		n3 := new(big.Int).Exp(big.NewInt(int64(n)), big.NewInt(3), nil)
		lo := new(big.Int).Mul(big.NewInt(10), n3)
		hi := new(big.Int).Mul(big.NewInt(100), n3)
		if p.Cmp(lo) < 0 || p.Cmp(hi) > 0 {
			t.Fatalf("n=%d: p=%v outside [10n³,100n³]", n, p)
		}
		if !IsPrime(p) {
			t.Fatalf("n=%d: %v not prime", n, p)
		}
	}
	if _, err := ForCubicWindow(0, 0); err == nil {
		t.Fatal("n=0 should error")
	}
}

func TestForPowerWindow(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		p, err := ForPowerWindow(n, 1)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		pow := new(big.Int).Exp(big.NewInt(int64(n)), big.NewInt(int64(n+2)), nil)
		lo := new(big.Int).Mul(big.NewInt(10), pow)
		hi := new(big.Int).Mul(big.NewInt(100), pow)
		if p.Cmp(lo) < 0 || p.Cmp(hi) > 0 {
			t.Fatalf("n=%d: p outside window", n)
		}
	}
	if _, err := ForPowerWindow(1, 0); err == nil {
		t.Fatal("n=1 should error")
	}
}

func TestForPowerWindowBitLength(t *testing.T) {
	// The Protocol 2 modulus must have Θ(n log n) bits; check growth.
	p8, err := ForPowerWindow(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	p16, err := ForPowerWindow(16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p16.BitLen() <= p8.BitLen() {
		t.Fatalf("bit length not growing: %d then %d", p8.BitLen(), p16.BitLen())
	}
	// n=16: 16^18 = 2^72, window adds < 7 bits.
	if p16.BitLen() < 72 || p16.BitLen() > 80 {
		t.Fatalf("p16 bit length = %d, want about 75", p16.BitLen())
	}
}

func TestNearFactorial(t *testing.T) {
	for _, n := range []int{4, 6, 8} {
		p, err := NearFactorial(n, 4, 1)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		f := Factorial(n)
		lo := new(big.Int).Mul(big.NewInt(4), f)
		hi := new(big.Int).Mul(big.NewInt(8), f)
		if p.Cmp(lo) < 0 || p.Cmp(hi) > 0 {
			t.Fatalf("n=%d: p=%v outside [4n!, 8n!]", n, p)
		}
	}
	if _, err := NearFactorial(0, 4, 0); err == nil {
		t.Fatal("n=0 should error")
	}
	if _, err := NearFactorial(4, 0, 0); err == nil {
		t.Fatal("mult=0 should error")
	}
}

func TestDifferentSeedsCanDiffer(t *testing.T) {
	// Not guaranteed for every pair, but across several seeds in a wide
	// window at least two distinct primes should appear.
	seen := map[string]bool{}
	for seed := int64(0); seed < 8; seed++ {
		p, err := ForCubicWindow(32, seed)
		if err != nil {
			t.Fatal(err)
		}
		seen[p.String()] = true
	}
	if len(seen) < 2 {
		t.Fatalf("all seeds produced the same prime: %v", seen)
	}
}

func TestIsPrimeUint64MatchesBig(t *testing.T) {
	// Exhaustive over a small range, then spot checks around the word
	// boundary and in the cubic windows the request path actually scans.
	for n := uint64(0); n < 2000; n++ {
		want := new(big.Int).SetUint64(n).ProbablyPrime(probablyPrimeRounds)
		if got := isPrimeUint64(n); got != want {
			t.Fatalf("n=%d: uint64 test says %v, big.Int says %v", n, got, want)
		}
	}
	spots := []uint64{
		1<<32 - 5, 1<<32 + 15, 2621441, 2621443, 26214400,
		18446744073709551557, 18446744073709551556, // largest uint64 prime and a neighbor
		1<<62 + 1, 1<<61 - 1, // 2^61-1 is a Mersenne prime
	}
	for _, n := range spots {
		want := new(big.Int).SetUint64(n).ProbablyPrime(probablyPrimeRounds)
		if got := isPrimeUint64(n); got != want {
			t.Fatalf("n=%d: uint64 test says %v, big.Int says %v", n, got, want)
		}
	}
}
