// Package prime finds the prime moduli the paper's hash families need.
//
// Protocol 1 uses a prime p ∈ [10n³, 100n³]; Protocol 2 uses a prime
// p ∈ [10·n^{n+2}, 100·n^{n+2}]; the GNI protocol's set-size estimation uses
// primes near multiples of n!. All windows are wide enough that a prime is
// guaranteed by Bertrand's postulate, which the paper invokes explicitly.
package prime

import (
	"fmt"
	"math/big"
	"math/bits"
	"math/rand"
)

// probablyPrimeRounds is the number of Miller-Rabin rounds used for big
// inputs. math/big documents the error probability as at most 4^-rounds;
// below 2^64 the test is exact for rounds >= 1.
const probablyPrimeRounds = 30

// isPrime dispatches on operand size: candidates below 2^64 go through the
// deterministic uint64 Miller-Rabin (primality is a property of the number,
// so the chosen primes — and everything derived from them — are unchanged;
// both tests are exact in that range, this one just skips 30 rounds of
// big.Int exponentiation on the request hot path). Larger candidates keep
// the big.Int test.
func isPrime(p *big.Int) bool {
	if p.IsUint64() {
		return isPrimeUint64(p.Uint64())
	}
	return p.ProbablyPrime(probablyPrimeRounds)
}

// mulmod64 returns a*b mod m using a 128-bit intermediate. Requires
// a, b < m; then the high product word is < m, which bits.Div64 needs.
func mulmod64(a, b, m uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, rem := bits.Div64(hi, lo, m)
	return rem
}

func powmod64(base, exp, m uint64) uint64 {
	result := uint64(1) % m
	base %= m
	for exp > 0 {
		if exp&1 == 1 {
			result = mulmod64(result, base, m)
		}
		base = mulmod64(base, base, m)
		exp >>= 1
	}
	return result
}

// isPrimeUint64 is an exact primality test for the full uint64 range:
// trial division by small primes, then Miller-Rabin with the 12-base set
// {2,3,...,37}, which is deterministic for all n < 3.3·10^24.
func isPrimeUint64(n uint64) bool {
	if n < 2 {
		return false
	}
	for _, q := range [...]uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		if n == q {
			return true
		}
		if n%q == 0 {
			return false
		}
	}
	// n is odd and > 37 here. Write n-1 = d·2^s with d odd.
	d := n - 1
	s := bits.TrailingZeros64(d)
	d >>= uint(s)
	for _, a := range [...]uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		x := powmod64(a, d, n)
		if x == 1 || x == n-1 {
			continue
		}
		witness := true
		for r := 1; r < s; r++ {
			x = mulmod64(x, x, n)
			if x == n-1 {
				witness = false
				break
			}
		}
		if witness {
			return false
		}
	}
	return true
}

// InWindow returns a prime p with lo <= p <= hi, searching upward from a
// deterministic pseudo-random starting point derived from seed so that
// different seeds exercise different primes in tests. It returns an error if
// the window contains no prime (possible only for tiny or empty windows).
func InWindow(lo, hi *big.Int, seed int64) (*big.Int, error) {
	if lo.Cmp(hi) > 0 {
		return nil, fmt.Errorf("prime: empty window [%v, %v]", lo, hi)
	}
	two := big.NewInt(2)
	if hi.Cmp(two) < 0 {
		return nil, fmt.Errorf("prime: window [%v, %v] below 2", lo, hi)
	}
	start := new(big.Int).Set(lo)
	if start.Cmp(two) < 0 {
		start.Set(two)
	}

	width := new(big.Int).Sub(hi, start)
	width.Add(width, big.NewInt(1))
	rng := rand.New(rand.NewSource(seed))
	offset := new(big.Int).Rand(rng, width)
	p := new(big.Int).Add(start, offset)

	// Scan upward from the random start, wrapping to the window bottom once.
	wrapped := false
	for {
		if p.Cmp(hi) > 0 {
			if wrapped {
				return nil, fmt.Errorf("prime: no prime in [%v, %v]", lo, hi)
			}
			wrapped = true
			p.Set(start)
		}
		if isPrime(p) {
			return p, nil
		}
		p.Add(p, big.NewInt(1))
		if wrapped && p.Cmp(new(big.Int).Add(start, offset)) > 0 {
			return nil, fmt.Errorf("prime: no prime in [%v, %v]", lo, hi)
		}
	}
}

// ForCubicWindow returns the Protocol 1 modulus: a prime in [10n³, 100n³].
func ForCubicWindow(n int, seed int64) (*big.Int, error) {
	if n < 1 {
		return nil, fmt.Errorf("prime: n = %d < 1", n)
	}
	n3 := new(big.Int).Exp(big.NewInt(int64(n)), big.NewInt(3), nil)
	lo := new(big.Int).Mul(big.NewInt(10), n3)
	hi := new(big.Int).Mul(big.NewInt(100), n3)
	return InWindow(lo, hi, seed)
}

// ForPowerWindow returns the Protocol 2 modulus: a prime in
// [10·n^{n+2}, 100·n^{n+2}]. Its bit length is Θ(n log n), which is exactly
// why Protocol 2 costs O(n log n) bits per node.
func ForPowerWindow(n int, seed int64) (*big.Int, error) {
	if n < 2 {
		return nil, fmt.Errorf("prime: n = %d < 2", n)
	}
	pow := new(big.Int).Exp(big.NewInt(int64(n)), big.NewInt(int64(n+2)), nil)
	lo := new(big.Int).Mul(big.NewInt(10), pow)
	hi := new(big.Int).Mul(big.NewInt(100), pow)
	return InWindow(lo, hi, seed)
}

// NearFactorial returns a prime in [mult·n!, 2·mult·n!]. The GNI protocol
// sizes its hash range proportionally to n! so that the yes-instance set of
// size 2·n! and the no-instance set of size n! land on opposite sides of the
// acceptance threshold.
func NearFactorial(n int, mult int64, seed int64) (*big.Int, error) {
	if n < 1 || mult < 1 {
		return nil, fmt.Errorf("prime: invalid n = %d, mult = %d", n, mult)
	}
	f := Factorial(n)
	lo := new(big.Int).Mul(big.NewInt(mult), f)
	hi := new(big.Int).Mul(big.NewInt(2), lo)
	return InWindow(lo, hi, seed)
}

// Factorial returns n! as a big integer.
func Factorial(n int) *big.Int {
	f := big.NewInt(1)
	for i := 2; i <= n; i++ {
		f.Mul(f, big.NewInt(int64(i)))
	}
	return f
}

// IsPrime reports whether p is (with overwhelming probability) prime.
func IsPrime(p *big.Int) bool {
	return isPrime(p)
}
