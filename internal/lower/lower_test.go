package lower

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"dip/internal/graph"
)

// family6 caches the 6-vertex family across tests (enumeration scans 2^15
// graphs).
var (
	family6     []*graph.Graph
	family6Once sync.Once
)

func getFamily6(t *testing.T) []*graph.Graph {
	t.Helper()
	family6Once.Do(func() {
		f, err := Family(6)
		if err != nil {
			t.Fatal(err)
		}
		family6 = f
	})
	if family6 == nil {
		t.Fatal("family enumeration failed earlier")
	}
	return family6
}

func TestFamilyValidation(t *testing.T) {
	if _, err := Family(0); err == nil {
		t.Fatal("m=0 accepted")
	}
	if _, err := Family(7); err == nil {
		t.Fatal("m beyond exact-enumeration bound accepted")
	}
}

func TestFamilyBelowSixIsTrivial(t *testing.T) {
	// The one-vertex graph is the only asymmetric graph below 6 vertices.
	for m := 2; m <= 5; m++ {
		f, err := Family(m)
		if err != nil {
			t.Fatal(err)
		}
		if len(f) != 0 {
			t.Fatalf("m=%d: found %d asymmetric graphs, want 0", m, len(f))
		}
	}
	f1, err := Family(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(f1) != 1 {
		t.Fatalf("m=1: %d graphs, want 1 (K1)", len(f1))
	}
}

func TestFamilySix(t *testing.T) {
	fam := getFamily6(t)
	// There are exactly 8 asymmetric graphs on 6 vertices; the connected
	// ones among them number at least 6.
	if len(fam) < 6 || len(fam) > 8 {
		t.Fatalf("|F(6)| = %d, expected 6..8 connected asymmetric graphs", len(fam))
	}
	for i, f := range fam {
		if f.N() != 6 || !f.IsConnected() {
			t.Fatalf("member %d malformed", i)
		}
		if graph.FindNontrivialAutomorphism(f) != nil {
			t.Fatalf("member %d not asymmetric", i)
		}
		for j := i + 1; j < len(fam); j++ {
			if graph.AreIsomorphic(f, fam[j]) {
				t.Fatalf("members %d and %d isomorphic", i, j)
			}
		}
	}
}

func TestVerifySymmetryCriterion(t *testing.T) {
	fam := getFamily6(t)
	if err := VerifySymmetryCriterion(fam); err != nil {
		t.Fatal(err)
	}
}

func TestVerifySymmetryCriterionCatchesBadFamily(t *testing.T) {
	// A family containing two isomorphic graphs violates the criterion
	// when the isomorphism preserves the attachment vertex 0: then
	// G(F, σ(F)) is symmetric although the indices differ.
	fam := getFamily6(t)
	relabeled := fam[0].Relabel(mustPerm(t, []int{0, 2, 1, 3, 4, 5}))
	if relabeled.Equal(fam[0]) {
		t.Fatal("relabeling fixed the graph — not asymmetric?")
	}
	bad := []*graph.Graph{fam[0], relabeled}
	if err := VerifySymmetryCriterion(bad); err == nil {
		t.Fatal("isomorphic family members not detected")
	}
}

func mustPerm(t *testing.T, s []int) []int {
	t.Helper()
	return s
}

func TestFamilyLogSize(t *testing.T) {
	if FamilyLogSize(2) != 0 {
		t.Fatal("tiny n should clamp to 0")
	}
	// n=64: C(64,2) - 64·6 = 2016 - 384 = 1632.
	if got := FamilyLogSize(64); math.Abs(got-1632) > 1e-6 {
		t.Fatalf("FamilyLogSize(64) = %v", got)
	}
	if FamilyLogSize(128) <= FamilyLogSize(64) {
		t.Fatal("log size not growing")
	}
}

func TestSimpleHashProtocolValidate(t *testing.T) {
	if err := (SimpleHashProtocol{L: 2, R: 64}).Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []SimpleHashProtocol{{L: 0, R: 4}, {L: 20, R: 4}, {L: 2, R: 0}} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("%+v accepted", bad)
		}
	}
}

func TestMessageIsIsomorphismInvariant(t *testing.T) {
	fam := getFamily6(t)
	p := SimpleHashProtocol{L: 3, R: 32}
	relabeled := MakeSide(fam[0].Relabel(mustPerm(t, []int{5, 4, 3, 2, 1, 0})))
	original := MakeSide(fam[0])
	for r := 0; r < p.R; r++ {
		if p.Message(original, r) != p.Message(relabeled, r) {
			t.Fatal("message differs across isomorphic graphs")
		}
	}
}

func TestMuIsDistribution(t *testing.T) {
	fam := getFamily6(t)
	p := SimpleHashProtocol{L: 2, R: 64}
	mu := p.Mu(MakeSide(fam[0]))
	if len(mu) != 4 {
		t.Fatalf("dimension %d", len(mu))
	}
	sum := 0.0
	for _, x := range mu {
		if x < 0 {
			t.Fatal("negative mass")
		}
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("total mass %v", sum)
	}
}

func TestCompletenessIsAutomatic(t *testing.T) {
	fam := getFamily6(t)
	p := SimpleHashProtocol{L: 2, R: 64}
	s := MakeSide(fam[0])
	if got := p.OptimalAcceptance(s, s); got != 1 {
		t.Fatalf("same-side acceptance %v, want 1", got)
	}
}

func TestSoundnessImprovesWithResponseLength(t *testing.T) {
	// The experiment behind E4: longer responses drive the optimal
	// cheating acceptance down (≈ 2^-L), exactly as Lemma 3.9 predicts,
	// and matched-challenge disagreement correspondingly up (the
	// shared-randomness form of Lemma 3.11).
	sides := MakeSides(getFamily6(t))
	prev := 1.0
	for _, L := range []int{1, 3, 6} {
		p := SimpleHashProtocol{L: L, R: 256}
		worst := p.MaxNoAcceptance(sides)
		if worst > prev+0.15 {
			t.Fatalf("L=%d: soundness error %v did not improve (prev %v)", L, worst, prev)
		}
		prev = worst
	}
	// At L = 6 the collision probability is ≈ 1/64 ≪ 1/3: a correct
	// protocol; every distinct pair must then disagree on ≥ 2/3 of the
	// challenges.
	p := SimpleHashProtocol{L: 6, R: 256}
	if worst := p.MaxNoAcceptance(sides); worst >= 1.0/3 {
		t.Fatalf("L=6 protocol not sound: %v", worst)
	}
	if d := p.MinPairwiseDisagreement(sides); d < 2.0/3 {
		t.Fatalf("correct protocol with pairwise disagreement %v < 2/3", d)
	}
}

func TestUnsound1BitProtocol(t *testing.T) {
	// With 1-bit responses the optimal cheater succeeds on about half the
	// challenges for some pair: the protocol cannot be sound — the L = 0..1
	// regime the packing bound rules out.
	sides := MakeSides(getFamily6(t))
	p := SimpleHashProtocol{L: 1, R: 256}
	if p.MaxNoAcceptance(sides) < 1.0/3 {
		t.Fatal("1-bit protocol claims soundness")
	}
}

func TestL1Distance(t *testing.T) {
	if got := L1Distance([]float64{1, 0}, []float64{0, 1}); got != 2 {
		t.Fatalf("L1 = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch accepted")
		}
	}()
	L1Distance([]float64{1}, []float64{1, 0})
}

func TestPackingCapacity(t *testing.T) {
	if PackingCapacity(1).Int64() != 5 || PackingCapacity(3).Int64() != 125 {
		t.Fatal("5^d wrong")
	}
}

func TestMinResponseBoundGrowth(t *testing.T) {
	// The bound must be Θ(log log n): non-decreasing, unbounded, tiny.
	prev := 0
	for _, n := range []int{8, 64, 1 << 10, 1 << 16, 1 << 24} {
		b := MinResponseBound(n)
		if b < prev {
			t.Fatalf("bound decreased at n=%d: %d < %d", n, b, prev)
		}
		prev = b
	}
	if MinResponseBound(4) != 0 {
		t.Fatal("tiny n should give 0")
	}
	if b := MinResponseBound(1 << 24); b < 1 {
		t.Fatal("bound never becomes positive")
	}
	if b := MinResponseBound(1 << 24); b > 4 {
		t.Fatalf("bound %d implausibly large for a log log", b)
	}
}

func TestGreedyPackingRespectsLemma312(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	for _, d := range []int{1, 2, 3, 4} {
		got := GreedyPacking(d, 3000, rng)
		cap5d := PackingCapacity(d).Int64()
		if int64(got) > cap5d {
			t.Fatalf("d=%d: greedy packing %d exceeds 5^d = %d — Lemma 3.12 violated",
				d, got, cap5d)
		}
		if got < 1 {
			t.Fatalf("d=%d: empty packing", d)
		}
	}
	// On one point there is only one distribution.
	if got := GreedyPacking(1, 100, rng); got != 1 {
		t.Fatalf("d=1 packing = %d, want 1", got)
	}
	// Packings grow with dimension.
	small := GreedyPacking(2, 3000, rng)
	large := GreedyPacking(8, 3000, rng)
	if large <= small {
		t.Fatalf("packing did not grow with dimension: %d then %d", small, large)
	}
}

func TestGreedyPackingPanicsOnBadDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GreedyPacking(0, 10, rand.New(rand.NewSource(1)))
}
