// Package lower implements the computational side of the paper's Section
// 3.4 lower bound: Theorem 1.4, "any dAM protocol for Sym has length
// Ω(log log n)".
//
// The proof has four ingredients, each of which this package makes
// executable:
//
//  1. a large family F of asymmetric, pairwise non-isomorphic graphs
//     (Family enumerates it exactly for small sizes; FamilyLogSize gives
//     the asymptotic count);
//  2. the dumbbell construction G(F_A, F_B) with the key property that
//     G(F_A, F_B) ∈ Sym iff F_A = F_B (VerifySymmetryCriterion checks it
//     exhaustively);
//  3. the response-set semantics of simple protocols (Definition 6,
//     Lemmas 3.9–3.11): for each side graph F, the challenge induces a
//     distribution μ_A(F) over prover-response sets, and correctness
//     forces these distributions pairwise far apart in L1
//     (SimpleHashProtocol realizes a concrete simple protocol family and
//     Mu/L1Distance measure the separation);
//  4. the packing bound (Lemma 3.12): at most 5^d distributions with
//     pairwise L1 distance > 1/2 fit in dimension d (PackingCapacity),
//     which combined with |F| = 2^Ω(n²) yields L = Ω(log log n)
//     (MinResponseBound tabulates the bound).
package lower

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/big"
	"math/rand"

	"dip/internal/graph"
)

// MaxFamilyVertices bounds the exact enumeration: beyond 7 vertices the
// 2^{m(m-1)/2} graph space is out of reach for a test-suite-friendly scan.
const MaxFamilyVertices = 6

// Family enumerates all connected asymmetric graphs on m vertices up to
// isomorphism, in a deterministic order. The smallest m with a non-empty
// family is 6 (asymmetric graphs do not exist on 2..5 vertices).
func Family(m int) ([]*graph.Graph, error) {
	if m < 1 || m > MaxFamilyVertices {
		return nil, fmt.Errorf("lower: family size %d outside [1, %d]", m, MaxFamilyVertices)
	}
	var reps []*graph.Graph
	edges := m * (m - 1) / 2
	total := 1 << uint(edges)
	for code := 0; code < total; code++ {
		g := graphFromCode(m, code)
		if !g.IsConnected() {
			continue
		}
		if graph.FindNontrivialAutomorphism(g) != nil {
			continue
		}
		fresh := true
		for _, r := range reps {
			if graph.AreIsomorphic(g, r) {
				fresh = false
				break
			}
		}
		if fresh {
			reps = append(reps, g)
		}
	}
	return reps, nil
}

// graphFromCode decodes an upper-triangle bitmask into a graph.
func graphFromCode(m, code int) *graph.Graph {
	g := graph.New(m)
	idx := 0
	for u := 0; u < m; u++ {
		for v := u + 1; v < m; v++ {
			if code&(1<<uint(idx)) != 0 {
				g.AddEdge(u, v)
			}
			idx++
		}
	}
	return g
}

// FamilyLogSize returns log2 of the asymptotic lower bound on |F(n)| used
// in the proof of Theorem 1.4: almost all of the 2^{C(n,2)} graphs are
// asymmetric, and each isomorphism class has at most n! members, so
// log2 |F| ≥ C(n,2) - log2(n!) ≥ C(n,2) - n·log2 n. Negative values are
// clamped to zero (tiny n).
func FamilyLogSize(n int) float64 {
	v := float64(n)*(float64(n)-1)/2 - float64(n)*math.Log2(float64(n))
	if v < 0 {
		return 0
	}
	return v
}

// VerifySymmetryCriterion checks, exhaustively over the family, the
// structural lemma the lower bound rests on: the dumbbell G(F_A, F_B) has a
// non-trivial automorphism iff F_A = F_B. It returns an error describing
// the first violation, if any.
func VerifySymmetryCriterion(family []*graph.Graph) error {
	for a, fa := range family {
		for b, fb := range family {
			g := graph.LowerBoundDumbbell(fa, fb)
			symmetric := graph.FindNontrivialAutomorphism(g) != nil
			if (a == b) != symmetric {
				return fmt.Errorf("lower: dumbbell (%d,%d): symmetric=%v, want %v",
					a, b, symmetric, a == b)
			}
		}
	}
	return nil
}

// SimpleHashProtocol is a concrete family of simple protocols (Definition
// 6) on the dumbbell graphs: the challenge is one of R equally likely
// values; the prover must hand both bridge nodes the same L-bit message m,
// and the bridge decision functions accept iff m equals a public hash of
// the (canonical form of the) side graph and the challenge. The sets
// M_A(F, r) of Lemma 3.8 are then singletons {hash_r(F)}, which makes every
// quantity of Section 3.4 exactly computable:
//
//   - Mu(F) is the distribution μ_A(F) of the response set over the
//     challenge;
//   - OptimalAcceptance(F_A, F_B) is the best prover's acceptance
//     probability on G(F_A, F_B) (Lemma 3.9): the probability that the two
//     sides demand the same message;
//   - a protocol in the family decides Sym on the dumbbell family iff
//     OptimalAcceptance < 1/3 for every pair F_A ≠ F_B (completeness is
//     automatic: identical sides always agree).
type SimpleHashProtocol struct {
	// L is the response length in bits; the response domain is [2^L].
	L int
	// R is the number of distinct challenge values (2^ℓ for an ℓ-bit
	// challenge).
	R int
}

// Validate checks the parameters are usable.
func (p SimpleHashProtocol) Validate() error {
	if p.L < 1 || p.L > 16 {
		return fmt.Errorf("lower: response length %d outside [1,16]", p.L)
	}
	if p.R < 1 || p.R > 1<<20 {
		return fmt.Errorf("lower: challenge space %d outside [1, 2^20]", p.R)
	}
	return nil
}

// Side is a dumbbell side prepared for hashing: the canonical form of the
// graph is digested once, so that per-challenge message computation is
// constant time.
type Side struct {
	key uint64
}

// MakeSide digests a side graph. Isomorphic graphs digest identically.
func MakeSide(f *graph.Graph) Side {
	h := fnv.New64a()
	_, _ = h.Write([]byte(graph.CanonicalKey(f)))
	return Side{key: h.Sum64()}
}

// MakeSides digests a whole family.
func MakeSides(family []*graph.Graph) []Side {
	out := make([]Side, len(family))
	for i, f := range family {
		out[i] = MakeSide(f)
	}
	return out
}

// Message returns the message hash_r(F) ∈ [2^L] that both bridge nodes
// demand when the side graph is F and the challenge is r. It depends on F
// only through its isomorphism class.
func (p SimpleHashProtocol) Message(f Side, r int) uint64 {
	return splitmix(f.key+0x9E3779B97F4A7C15*uint64(r+1)) & ((1 << uint(p.L)) - 1)
}

func splitmix(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// Mu returns the marginal distribution of the demanded message over the
// uniform challenge, as a vector of length 2^L. Note: because the two
// bridge nodes share the challenge, the *marginal* distributions of two
// sides can be close even when the sides are perfectly distinguishable at
// matched challenges; the quantity Lemma 3.11 actually controls is the
// matched-challenge disagreement rate (MinPairwiseDisagreement below).
func (p SimpleHashProtocol) Mu(f Side) []float64 {
	mu := make([]float64, 1<<uint(p.L))
	for r := 0; r < p.R; r++ {
		mu[p.Message(f, r)] += 1 / float64(p.R)
	}
	return mu
}

// OptimalAcceptance returns the best prover's probability of making every
// node of G(F_A, F_B) accept: by Lemma 3.9 this is exactly the probability
// that M_A(F_A, r) ∩ M_B(F_B, r) ≠ ∅, i.e. that the two singleton demands
// coincide at the same challenge.
func (p SimpleHashProtocol) OptimalAcceptance(fa, fb Side) float64 {
	agree := 0
	for r := 0; r < p.R; r++ {
		if p.Message(fa, r) == p.Message(fb, r) {
			agree++
		}
	}
	return float64(agree) / float64(p.R)
}

// MaxNoAcceptance returns the worst-case (largest) optimal-prover
// acceptance over all non-equal pairs in the family: the protocol's
// soundness error on the dumbbell family.
func (p SimpleHashProtocol) MaxNoAcceptance(sides []Side) float64 {
	worst := 0.0
	for a, fa := range sides {
		for b, fb := range sides {
			if a == b {
				continue
			}
			if acc := p.OptimalAcceptance(fa, fb); acc > worst {
				worst = acc
			}
		}
	}
	return worst
}

// MinPairwiseDisagreement returns the smallest matched-challenge
// disagreement rate between distinct family members: the probability, over
// the shared challenge, that the two sides demand different messages. For
// any protocol in this family, soundness error ε implies disagreement
// ≥ 1 - ε for every pair — the shared-randomness form of the Lemma 3.11
// separation (yes-pairs agree with probability 1, no-pairs must disagree
// with probability ≥ 2/3).
func (p SimpleHashProtocol) MinPairwiseDisagreement(sides []Side) float64 {
	best := math.Inf(1)
	for a, fa := range sides {
		for b, fb := range sides {
			if a >= b {
				continue
			}
			if d := 1 - p.OptimalAcceptance(fa, fb); d < best {
				best = d
			}
		}
	}
	if math.IsInf(best, 1) {
		return 0
	}
	return best
}

// L1Distance returns ‖a − b‖₁.
func L1Distance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("lower: L1 of dimensions %d and %d", len(a), len(b)))
	}
	sum := 0.0
	for i := range a {
		sum += math.Abs(a[i] - b[i])
	}
	return sum
}

// PackingCapacity returns the Lemma 3.12 bound 5^d: the maximum number of
// distributions on [d] with pairwise L1 distance > 1/2.
func PackingCapacity(d int) *big.Int {
	return new(big.Int).Exp(big.NewInt(5), big.NewInt(int64(d)), nil)
}

// MinResponseBound returns the Theorem 1.4 lower bound on the response
// length L of any dAM protocol for Sym on n-vertex-side dumbbells:
// the simple-protocol transform (Lemma 3.7) turns length L into 4L, the
// response-set domain has size d = 2^{2^{4L}}, and the packing bound forces
// 5^d ≥ |F(n)|, i.e.
//
//	L ≥ (1/4)·log2 log2 ( log2|F(n)| / log2 5 ).
//
// The returned value is the smallest non-negative integer satisfying the
// inequality; its Θ(log log n) growth is the content of the theorem.
func MinResponseBound(n int) int {
	logF := FamilyLogSize(n)
	if logF <= 0 {
		return 0
	}
	inner := logF / math.Log2(5)
	if inner <= 1 {
		return 0
	}
	mid := math.Log2(inner)
	if mid <= 1 {
		return 0
	}
	l := math.Log2(mid) / 4
	if l <= 0 {
		return 0
	}
	return int(math.Ceil(l))
}

// GreedyPacking empirically exercises Lemma 3.12: it samples `samples`
// uniform distributions on [d] (normalized exponential variates, i.e.
// uniform on the simplex) and greedily keeps each one whose L1 distance to
// every kept distribution exceeds 1/2. The lemma guarantees the resulting
// packing can never exceed 5^d, whatever the sampling or selection
// strategy; the experiment shows how quickly the greedy packing saturates
// far below that cap.
func GreedyPacking(d, samples int, rng *rand.Rand) int {
	if d < 1 {
		panic(fmt.Sprintf("lower: packing dimension %d < 1", d))
	}
	var kept [][]float64
	for s := 0; s < samples; s++ {
		mu := make([]float64, d)
		total := 0.0
		for i := range mu {
			mu[i] = rng.ExpFloat64()
			total += mu[i]
		}
		for i := range mu {
			mu[i] /= total
		}
		ok := true
		for _, nu := range kept {
			if L1Distance(mu, nu) <= 0.5 {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, mu)
		}
	}
	return len(kept)
}
