package faults

import (
	"bytes"
	"math/rand"
	"testing"

	"dip/internal/wire"
)

func msg(bits int, fill byte) wire.Message {
	data := make([]byte, (bits+7)/8)
	for i := range data {
		data[i] = fill
	}
	return wire.Message{Data: data, Bits: bits}
}

func ctxAt(plane Plane, round, from, to int) Context {
	return Context{Plane: plane, Round: round, From: from, To: to, Nodes: 8, Seed: 42}
}

// countBitDiff returns the number of differing payload bits.
func countBitDiff(a, b wire.Message) int {
	if a.Bits != b.Bits {
		return -1
	}
	diff := 0
	for i := 0; i < a.Bits; i++ {
		ba := a.Data[i/8] >> (uint(i) % 8) & 1
		bb := b.Data[i/8] >> (uint(i) % 8) & 1
		if ba != bb {
			diff++
		}
	}
	return diff
}

func TestBitFlipFlipsExactlyOneBit(t *testing.T) {
	inj := BitFlip()
	m := msg(37, 0xA5)
	ctx := ctxAt(PlaneProver, 0, -1, 3)
	out := inj(deliveryRNG(ctx), ctx, m)
	if d := countBitDiff(m, out); d != 1 {
		t.Fatalf("bit diff = %d, want 1", d)
	}
	// The input must not have been mutated in place.
	if !bytes.Equal(m.Data, msg(37, 0xA5).Data) {
		t.Fatal("BitFlip mutated its input")
	}
	// Same delivery coordinates → same flip.
	out2 := inj(deliveryRNG(ctx), ctx, m)
	if !bytes.Equal(out.Data, out2.Data) {
		t.Fatal("BitFlip is not deterministic per delivery")
	}
	// Empty messages pass through untouched.
	if got := inj(deliveryRNG(ctx), ctx, wire.Empty); got.Bits != 0 || len(got.Data) != 0 {
		t.Fatalf("BitFlip on empty = %+v", got)
	}
}

func TestTruncateHalves(t *testing.T) {
	inj := Truncate()
	m := msg(33, 0xFF)
	out := inj(nil, ctxAt(PlaneProver, 0, -1, 0), m)
	if out.Bits != 16 || len(out.Data) != 2 {
		t.Fatalf("truncated to Bits=%d len=%d, want 16/2", out.Bits, len(out.Data))
	}
	if got := inj(nil, ctxAt(PlaneProver, 0, -1, 0), wire.Empty); got.Bits != 0 {
		t.Fatalf("Truncate on empty = %+v", got)
	}
}

func TestDropEmpties(t *testing.T) {
	out := Drop()(nil, ctxAt(PlaneProver, 0, -1, 0), msg(64, 0x12))
	if out.Bits != 0 || len(out.Data) != 0 {
		t.Fatalf("Drop = %+v, want empty", out)
	}
}

func TestReplayDeliversPreviousRound(t *testing.T) {
	inj := Replay()
	m0, m1, m2 := msg(8, 0x01), msg(8, 0x02), msg(8, 0x03)
	// Channel (prover→node 2): first delivery passes through, later ones lag
	// one round behind.
	if out := inj(nil, ctxAt(PlaneProver, 0, -1, 2), m0); !bytes.Equal(out.Data, m0.Data) {
		t.Fatalf("round 0: got % x", out.Data)
	}
	if out := inj(nil, ctxAt(PlaneProver, 1, -1, 2), m1); !bytes.Equal(out.Data, m0.Data) {
		t.Fatalf("round 1: got % x, want replay of round 0", out.Data)
	}
	if out := inj(nil, ctxAt(PlaneProver, 2, -1, 2), m2); !bytes.Equal(out.Data, m1.Data) {
		t.Fatalf("round 2: got % x, want replay of round 1", out.Data)
	}
	// A different channel (other receiver) has independent history.
	if out := inj(nil, ctxAt(PlaneProver, 1, -1, 3), m1); !bytes.Equal(out.Data, m1.Data) {
		t.Fatalf("fresh channel: got % x, want pass-through", out.Data)
	}
}

func TestNodeSwapShiftsByOne(t *testing.T) {
	inj := NodeSwap()
	msgs := []wire.Message{msg(8, 0x10), msg(8, 0x20), msg(8, 0x30)}
	// Prover plane, ascending node order (the engine contract): node 0
	// keeps its own, node v>0 receives node v-1's message.
	for v := 0; v < 3; v++ {
		out := inj(nil, ctxAt(PlaneProver, 0, -1, v), msgs[v])
		want := msgs[v]
		if v > 0 {
			want = msgs[v-1]
		}
		if !bytes.Equal(out.Data, want.Data) {
			t.Fatalf("node %d: got % x, want % x", v, out.Data, want.Data)
		}
	}
	// Exchange plane passes through.
	out := inj(nil, ctxAt(PlaneExchange, 0, 1, 2), msgs[2])
	if !bytes.Equal(out.Data, msgs[2].Data) {
		t.Fatal("NodeSwap touched the exchange plane")
	}
}

func TestEquivocateSingleVictim(t *testing.T) {
	inj := Equivocate()
	m := msg(40, 0x55)
	victims := 0
	for to := 0; to < 8; to++ {
		ctx := ctxAt(PlaneProver, 0, -1, to)
		out := inj(deliveryRNG(ctx), ctx, m)
		switch d := countBitDiff(m, out); d {
		case 0:
		case 1:
			victims++
		default:
			t.Fatalf("to=%d: diff=%d", to, d)
		}
	}
	if victims != 1 {
		t.Fatalf("victims = %d, want exactly 1", victims)
	}
}

func TestCombinators(t *testing.T) {
	m := msg(16, 0x0F)
	ctx := ctxAt(PlaneProver, 1, -1, 4)
	if out := WithProbability(0, Drop())(deliveryRNG(ctx), ctx, m); out.Bits != m.Bits {
		t.Fatal("p=0 applied the injector")
	}
	if out := WithProbability(1, Drop())(deliveryRNG(ctx), ctx, m); out.Bits != 0 {
		t.Fatal("p=1 skipped the injector")
	}
	if out := OnRounds(Drop(), 0)(nil, ctx, m); out.Bits != m.Bits {
		t.Fatal("OnRounds applied on an unlisted round")
	}
	if out := OnRounds(Drop(), 1)(nil, ctx, m); out.Bits != 0 {
		t.Fatal("OnRounds skipped a listed round")
	}
	if out := OnNodes(Drop(), 3)(nil, ctx, m); out.Bits != m.Bits {
		t.Fatal("OnNodes applied on an unlisted node")
	}
	if out := OnNodes(Drop(), 4)(nil, ctx, m); out.Bits != 0 {
		t.Fatal("OnNodes skipped a listed node")
	}
	chained := Chain(Truncate(), Truncate())
	if out := chained(nil, ctx, m); out.Bits != 4 {
		t.Fatalf("Chain(Truncate, Truncate) bits = %d, want 4", out.Bits)
	}
}

// TestExchangeCorruptorOrderIndependent pins the contract the concurrent
// engine relies on: per-delivery output depends only on the coordinates,
// not on global call order.
func TestExchangeCorruptorOrderIndependent(t *testing.T) {
	type delivery struct{ round, from, to int }
	var deliveries []delivery
	for round := 0; round < 3; round++ {
		for from := 0; from < 5; from++ {
			for to := 0; to < 5; to++ {
				if from != to {
					deliveries = append(deliveries, delivery{round, from, to})
				}
			}
		}
	}
	m := msg(48, 0xC3)
	forward := ExchangeCorruptor(7, 5, BitFlip())
	backward := ExchangeCorruptor(7, 5, BitFlip())
	got := make(map[delivery]wire.Message, len(deliveries))
	for _, d := range deliveries {
		got[d] = forward(d.round, d.from, d.to, m)
	}
	for i := len(deliveries) - 1; i >= 0; i-- {
		d := deliveries[i]
		if out := backward(d.round, d.from, d.to, m); !bytes.Equal(out.Data, got[d].Data) {
			t.Fatalf("delivery %+v differs under reversed call order", d)
		}
	}
}

// TestCorruptorSeedSensitivity: different seeds give different fault
// schedules (statistically — over 64 deliveries at least one flip must
// land elsewhere).
func TestCorruptorSeedSensitivity(t *testing.T) {
	m := msg(128, 0x00)
	a := Corruptor(1, 8, BitFlip())
	b := Corruptor(2, 8, BitFlip())
	same := true
	for v := 0; v < 8; v++ {
		for r := 0; r < 8; r++ {
			if !bytes.Equal(a(r, v, m).Data, b(r, v, m).Data) {
				same = false
			}
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical fault schedules")
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	want := []string{"bitflip", "drop", "equivocate", "nodeswap", "replay", "truncate"}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v", names)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("Names()[%d] = %q, want %q", i, names[i], n)
		}
		c, ok := ByName(n)
		if !ok || c.Name != n || c.New == nil {
			t.Fatalf("ByName(%q) = %+v, %v", n, c, ok)
		}
		if c.New() == nil {
			t.Fatalf("class %q built a nil injector", n)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName accepted an unknown class")
	}
	swap, _ := ByName("nodeswap")
	if swap.Supports(PlaneExchange) {
		t.Fatal("nodeswap claims exchange-plane support")
	}
	if !swap.Supports(PlaneProver) {
		t.Fatal("nodeswap lost prover-plane support")
	}
}

// TestInjectorsNeverProduceMalformedMessages: whatever an injector emits
// must satisfy the wire invariant len(Data) == ceil(Bits/8) — the engine
// validates prover messages against it, and corrupted messages flow into
// decoders that assume it.
func TestInjectorsNeverProduceMalformedMessages(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, name := range Names() {
		c, _ := ByName(name)
		inj := c.New()
		for trial := 0; trial < 50; trial++ {
			bits := rng.Intn(70)
			m := msg(bits, byte(rng.Intn(256)))
			ctx := Context{Plane: PlaneProver, Round: trial % 3, From: -1, To: trial % 8, Nodes: 8, Seed: 9}
			out := inj(deliveryRNG(ctx), ctx, m)
			if out.Bits < 0 || len(out.Data) != (out.Bits+7)/8 {
				t.Fatalf("%s: malformed output Bits=%d len=%d", name, out.Bits, len(out.Data))
			}
		}
	}
}

func TestEquivocateWithinPrefixOnly(t *testing.T) {
	const width = 9
	inj := EquivocateWithin(width)
	m := msg(64, 0x55)
	// Over many (round, from) pairs, every flipped bit must land inside
	// the first `width` bits, the victim choice must match Equivocate's
	// (same derivation), and exactly one receiver per pair is hit.
	for round := 0; round < 4; round++ {
		for from := 0; from < 8; from++ {
			victims := 0
			for to := 0; to < 8; to++ {
				ctx := ctxAt(PlaneExchange, round, from, to)
				out := inj(deliveryRNG(ctx), ctx, m)
				d := countBitDiff(m, out)
				if d == 0 {
					continue
				}
				if d != 1 {
					t.Fatalf("round=%d from=%d to=%d: diff=%d", round, from, to, d)
				}
				victims++
				for i := width; i < m.Bits; i++ {
					if out.Data[i/8]>>(uint(i)%8)&1 != m.Data[i/8]>>(uint(i)%8)&1 {
						t.Fatalf("round=%d from=%d: flipped bit %d beyond width %d", round, from, i, width)
					}
				}
				// The generic injector must pick the same victim: the
				// width limit narrows the flip position, not the target.
				if d := countBitDiff(m, Equivocate()(deliveryRNG(ctx), ctx, m)); d != 1 {
					t.Fatalf("round=%d from=%d to=%d: generic Equivocate disagrees on victim", round, from, to)
				}
			}
			if victims != 1 {
				t.Fatalf("round=%d from=%d: victims=%d, want 1", round, from, victims)
			}
		}
	}
	// Width beyond the message length degrades to the full-message flip:
	// over all receivers, exactly one copy differs by exactly one bit.
	wide := EquivocateWithin(1 << 20)
	victims := 0
	for to := 0; to < 8; to++ {
		ctx := ctxAt(PlaneExchange, 0, 2, to)
		switch d := countBitDiff(m, wide(deliveryRNG(ctx), ctx, m)); d {
		case 0:
		case 1:
			victims++
		default:
			t.Fatalf("oversized width, to=%d: diff=%d", to, d)
		}
	}
	if victims != 1 {
		t.Fatalf("oversized width: victims=%d, want 1", victims)
	}
}
