package faults

import "time"

// LinkPolicy is a socket-level fault schedule for fleet transports:
// per-frame delay and drop decisions on the coordinator→peer links,
// keyed statelessly by (seed, peer, frame sequence) with the same
// splitmix64 derivation the delivery-plane injectors use. Two runs with
// the same seed and the same frame order make identical decisions, so a
// fleet-under-chaos run is as replayable as an in-process faulted one.
//
// A delayed frame is held for Delay before it reaches the socket (the
// transport's sleep must stay cancel-aware); a dropped frame never
// reaches the socket at all, emulating a partitioned link — the session
// stalls until the peer or coordinator deadline fires and the run fails
// with a structured transport error. Faults can delay or kill a run but
// never alter delivered bits, so decision soundness is untouched.
type LinkPolicy struct {
	// Seed keys the schedule; 0 is a valid seed, not "disabled".
	Seed int64
	// Delay is the injected latency per affected frame.
	Delay time.Duration
	// DelayProb is the probability in [0,1] that a frame is delayed.
	DelayProb float64
	// DropProb is the probability in [0,1] that a frame is dropped.
	DropProb float64
}

// Enabled reports whether the policy can affect any frame.
func (p LinkPolicy) Enabled() bool {
	return (p.DelayProb > 0 && p.Delay > 0) || p.DropProb > 0
}

// Decide returns the fate of one outbound frame: how long to hold it and
// whether to drop it instead of sending. peer is the fleet index of the
// destination peer and seq the frame's send sequence number within its
// session, so the decision depends only on delivery coordinates.
func (p LinkPolicy) Decide(peer, seq int) (delay time.Duration, drop bool) {
	if p.DropProb > 0 {
		u := float64(deriveState(p.Seed, 0x11, uint64(peer), uint64(seq))>>11) / (1 << 53)
		if u < p.DropProb {
			return 0, true
		}
	}
	if p.DelayProb > 0 && p.Delay > 0 {
		u := float64(deriveState(p.Seed, 0x22, uint64(peer), uint64(seq))>>11) / (1 << 53)
		if u < p.DelayProb {
			return p.Delay, false
		}
	}
	return 0, false
}
