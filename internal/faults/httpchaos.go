// HTTP-boundary chaos: the serving-stack sibling of the message-plane
// injectors. Where an Injector rewrites one engine delivery, an
// HTTPChaos scenario rewrites one HTTP exchange — malformed and
// truncated bodies, oversized uploads, slow-dripped requests, abrupt
// disconnects, garbage framing. The registry idiom mirrors the Class
// registry: scenarios are selected by name or seed-deterministically
// per exchange, so a chaos session is a pure function of its seed and
// reproducible across hosts (timings aside).
//
// Scenarios speak raw TCP rather than net/http: most of them are
// protocol violations an http.Client refuses to produce.
package faults

import (
	"bufio"
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"time"
)

// HTTPOutcome classifies one chaos exchange as the scenario saw it.
type HTTPOutcome struct {
	// Status is the HTTP status the service answered, or 0 when the
	// exchange legitimately ended without a response (client-abort
	// scenarios).
	Status int
}

// HTTPChaos is one named adversarial client behavior at the HTTP
// serving boundary.
type HTTPChaos struct {
	// Name is the CLI-facing identifier, e.g. "malformed-json".
	Name string
	// Summary is a one-line description of the behavior.
	Summary string
	// WantResponse reports whether the scenario must be answered: true
	// means a healthy service answers a structured 4xx/5xx (anything
	// else — a 2xx, a dropped connection — is a hardening violation);
	// false means the client aborts the exchange itself, so the only
	// obligation on the service is to survive it.
	WantResponse bool
	// Run executes one exchange against addr (host:port). body is a
	// well-formed request body for POST /v1/run that the scenario
	// corrupts; rng is the exchange's private deterministic stream.
	Run func(rng *rand.Rand, addr string, body []byte) (HTTPOutcome, error)
}

// httpChaosRegistry lists every scenario, keyed by name.
var httpChaosRegistry = map[string]HTTPChaos{
	"malformed-json": {
		Name:         "malformed-json",
		Summary:      "valid request body with random bytes corrupted",
		WantResponse: true,
		Run:          runMalformedJSON,
	},
	"truncated-body": {
		Name:         "truncated-body",
		Summary:      "Content-Length promises more than is sent, then half-close",
		WantResponse: true,
		Run:          runTruncatedBody,
	},
	"oversized-body": {
		Name:         "oversized-body",
		Summary:      "body past the service cap (413/400 through MaxBytesReader)",
		WantResponse: true,
		Run:          runOversizedBody,
	},
	"slowloris": {
		Name:         "slowloris",
		Summary:      "body dripped in tiny delayed chunks, malformed at the tail",
		WantResponse: true,
		Run:          runSlowloris,
	},
	"disconnect": {
		Name:         "disconnect",
		Summary:      "client vanishes mid-body (no response owed)",
		WantResponse: false,
		Run:          runDisconnect,
	},
	"header-garbage": {
		Name:         "header-garbage",
		Summary:      "unparseable request framing (bad Content-Length, junk method)",
		WantResponse: true,
		Run:          runHeaderGarbage,
	},
}

// HTTPChaosByName looks a scenario up by its CLI name.
func HTTPChaosByName(name string) (HTTPChaos, bool) {
	c, ok := httpChaosRegistry[name]
	return c, ok
}

// HTTPChaosNames returns all scenario names, sorted.
func HTTPChaosNames() []string {
	out := make([]string, 0, len(httpChaosRegistry))
	for name := range httpChaosRegistry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// HTTPChaosFor picks the scenario for exchange i of a seed-deterministic
// chaos session, with the exchange's private randomness stream — the
// HTTP-plane analogue of deliveryRNG. Tags 3 and 4 keep the key space
// disjoint from the message planes (1, 2).
func HTTPChaosFor(seed int64, i int) (HTTPChaos, *rand.Rand) {
	names := HTTPChaosNames()
	pick := deriveState(seed, 3, uint64(i)) % uint64(len(names))
	rng := rand.New(&smSource{state: deriveState(seed, 4, uint64(i))})
	return httpChaosRegistry[names[pick]], rng
}

// chaosDialTimeout bounds the TCP dial; chaosExchangeTimeout bounds one
// whole exchange (the slowloris drip plus the service's answer).
const (
	chaosDialTimeout     = 2 * time.Second
	chaosExchangeTimeout = 15 * time.Second
)

// rawExchange dials addr, hands the connection to write, then reads and
// parses the response status line. A clean EOF without a response
// yields Status 0.
func rawExchange(addr string, write func(c *net.TCPConn) error) (HTTPOutcome, error) {
	conn, err := net.DialTimeout("tcp", addr, chaosDialTimeout)
	if err != nil {
		return HTTPOutcome{}, fmt.Errorf("dial %s: %w", addr, err)
	}
	tc := conn.(*net.TCPConn)
	defer tc.Close()
	if err := tc.SetDeadline(time.Now().Add(chaosExchangeTimeout)); err != nil {
		return HTTPOutcome{}, err
	}
	if err := write(tc); err != nil {
		// A write error is expected when the service already answered
		// and closed (oversized bodies); fall through to the read.
		_ = err
	}
	br := bufio.NewReader(tc)
	resp, err := http.ReadResponse(br, nil)
	if err != nil {
		// No parseable response: either the server closed without one
		// (fine for client-abort scenarios) or never answered.
		return HTTPOutcome{Status: 0}, nil
	}
	defer resp.Body.Close()
	return HTTPOutcome{Status: resp.StatusCode}, nil
}

// requestHead renders the head of a POST /v1/run with the given
// Content-Length line value.
func requestHead(contentLength string) []byte {
	return []byte("POST /v1/run HTTP/1.1\r\n" +
		"Host: chaos\r\n" +
		"Content-Type: application/json\r\n" +
		"Content-Length: " + contentLength + "\r\n" +
		"Connection: close\r\n\r\n")
}

func runMalformedJSON(rng *rand.Rand, addr string, body []byte) (HTTPOutcome, error) {
	// Corrupt a copy: cut the tail at a random point, or splatter a few
	// random bytes, or both — every variant fails the strict decoder.
	b := append([]byte(nil), body...)
	switch rng.Intn(3) {
	case 0:
		b = b[:1+rng.Intn(len(b)-1)]
	case 1:
		for k := 0; k < 3; k++ {
			b[rng.Intn(len(b))] = byte(rng.Intn(256))
		}
		b[0] = '}' // guarantee a syntax error even if the splatter landed harmlessly
	default:
		b = append(b[:1+rng.Intn(len(b)-1)], []byte("!!!{{{")...)
	}
	return rawExchange(addr, func(c *net.TCPConn) error {
		if _, err := c.Write(requestHead(fmt.Sprint(len(b)))); err != nil {
			return err
		}
		_, err := c.Write(b)
		return err
	})
}

func runTruncatedBody(rng *rand.Rand, addr string, body []byte) (HTTPOutcome, error) {
	// Promise the full body, deliver a prefix, then half-close: the
	// write side signals EOF but the read side stays open, so the
	// service's 400 (unexpected EOF from the decoder) is observable.
	sent := 1 + rng.Intn(len(body)/2)
	return rawExchange(addr, func(c *net.TCPConn) error {
		if _, err := c.Write(requestHead(fmt.Sprint(len(body)))); err != nil {
			return err
		}
		if _, err := c.Write(body[:sent]); err != nil {
			return err
		}
		return c.CloseWrite()
	})
}

// oversizedPadding comfortably exceeds cmd/dipserve's default 8 MiB
// body cap.
const oversizedPadding = 9 << 20

func runOversizedBody(rng *rand.Rand, addr string, body []byte) (HTTPOutcome, error) {
	// The padding must live INSIDE the first JSON value — a giant string
	// for a known field — because the decoder stops reading at the end of
	// that value: padding appended after a valid body would never be read
	// and the request would succeed. Reading through the string trips the
	// byte cap (413); against a server with a huge cap the string still
	// earns a 4xx as a nonsense protocol name.
	head := []byte(`{"protocol": "`)
	tail := []byte(`"}`)
	pad := bytes.Repeat([]byte{'x'}, 64<<10)
	total := len(head) + oversizedPadding + len(tail)
	return rawExchange(addr, func(c *net.TCPConn) error {
		if _, err := c.Write(requestHead(fmt.Sprint(total))); err != nil {
			return err
		}
		if _, err := c.Write(head); err != nil {
			return err
		}
		// The service answers (and stops reading) as soon as the cap
		// trips; subsequent writes fail with a reset. That is the
		// expected path, not an error.
		for sent := 0; sent < oversizedPadding; sent += len(pad) {
			if _, err := c.Write(pad); err != nil {
				return err
			}
		}
		_, err := c.Write(tail)
		return err
	})
}

func runSlowloris(rng *rand.Rand, addr string, body []byte) (HTTPOutcome, error) {
	// Drip the body a few bytes at a time with delays — long enough to
	// hold handler state across many read deadlines, short enough to
	// keep a chaos session brisk. The garbage prefix makes the eventual
	// answer a deterministic 4xx (a trailing corruption would never be
	// read: the decoder stops after the first JSON value).
	b := append([]byte("!garbage!"), body...)
	const chunks = 8
	delay := time.Duration(10+rng.Intn(20)) * time.Millisecond
	return rawExchange(addr, func(c *net.TCPConn) error {
		if _, err := c.Write(requestHead(fmt.Sprint(len(b)))); err != nil {
			return err
		}
		step := (len(b) + chunks - 1) / chunks
		for off := 0; off < len(b); off += step {
			end := off + step
			if end > len(b) {
				end = len(b)
			}
			if _, err := c.Write(b[off:end]); err != nil {
				return err
			}
			time.Sleep(delay)
		}
		return nil
	})
}

func runDisconnect(rng *rand.Rand, addr string, body []byte) (HTTPOutcome, error) {
	// Vanish mid-body: full close, no EOF courtesy, no response read.
	sent := 1 + rng.Intn(len(body)-1)
	conn, err := net.DialTimeout("tcp", addr, chaosDialTimeout)
	if err != nil {
		return HTTPOutcome{}, fmt.Errorf("dial %s: %w", addr, err)
	}
	tc := conn.(*net.TCPConn)
	_ = tc.SetDeadline(time.Now().Add(chaosExchangeTimeout))
	if _, err := tc.Write(requestHead(fmt.Sprint(len(body)))); err != nil {
		tc.Close()
		return HTTPOutcome{}, nil
	}
	_, _ = tc.Write(body[:sent])
	// SO_LINGER 0 turns the close into a hard RST — the rudest
	// realistic disconnect.
	_ = tc.SetLinger(0)
	tc.Close()
	return HTTPOutcome{Status: 0}, nil
}

func runHeaderGarbage(rng *rand.Rand, addr string, body []byte) (HTTPOutcome, error) {
	heads := [][]byte{
		[]byte("POST /v1/run HTTP/1.1\r\nHost: chaos\r\nContent-Length: notanumber\r\n\r\n"),
		[]byte("@@@@ /v1/run HTTP/1.1\r\nHost: chaos\r\n\r\n"),
		[]byte("POST /v1/run HTTP/1.1\r\nHost: chaos\r\nTransfer-Encoding: bogus\r\n\r\n"),
		[]byte("POST /v1/run HTTP/9.9\r\nHost: chaos\r\n\r\n"),
		[]byte("POST /v1/run HTTP/1.1\r\nHost chaos no colon\r\n\r\n"),
	}
	head := heads[rng.Intn(len(heads))]
	return rawExchange(addr, func(c *net.TCPConn) error {
		_, err := c.Write(head)
		return err
	})
}
