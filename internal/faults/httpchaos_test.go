package faults

import (
	"testing"
)

// TestHTTPChaosRegistryConsistent: every scenario's map key matches its
// Name, every scenario has a summary and a runner, and the sorted name
// listing covers the registry exactly.
func TestHTTPChaosRegistryConsistent(t *testing.T) {
	names := HTTPChaosNames()
	if len(names) != len(httpChaosRegistry) {
		t.Fatalf("HTTPChaosNames lists %d of %d scenarios", len(names), len(httpChaosRegistry))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names unsorted at %d: %q >= %q", i, names[i-1], names[i])
		}
	}
	for key, sc := range httpChaosRegistry {
		if sc.Name != key {
			t.Errorf("scenario keyed %q names itself %q", key, sc.Name)
		}
		if sc.Summary == "" || sc.Run == nil {
			t.Errorf("scenario %q missing summary or runner", key)
		}
		if _, ok := HTTPChaosByName(key); !ok {
			t.Errorf("HTTPChaosByName(%q) missed", key)
		}
	}
	if _, ok := HTTPChaosByName("no-such-scenario"); ok {
		t.Fatal("HTTPChaosByName invented a scenario")
	}
}

// TestHTTPChaosForDeterministic: the scenario stream is a pure function
// of the seed — same seed, same sequence of scenario picks and identical
// private randomness; a different seed diverges.
func TestHTTPChaosForDeterministic(t *testing.T) {
	const n = 64
	draw := func(seed int64) ([]string, []int64) {
		names := make([]string, n)
		firsts := make([]int64, n)
		for i := 0; i < n; i++ {
			sc, rng := HTTPChaosFor(seed, i)
			names[i] = sc.Name
			firsts[i] = rng.Int63()
		}
		return names, firsts
	}
	names1, firsts1 := draw(7)
	names2, firsts2 := draw(7)
	for i := 0; i < n; i++ {
		if names1[i] != names2[i] || firsts1[i] != firsts2[i] {
			t.Fatalf("exchange %d not reproducible: (%s, %d) vs (%s, %d)",
				i, names1[i], firsts1[i], names2[i], firsts2[i])
		}
	}
	names3, _ := draw(8)
	same := 0
	for i := 0; i < n; i++ {
		if names1[i] == names3[i] {
			same++
		}
	}
	if same == n {
		t.Fatal("seeds 7 and 8 produced identical scenario streams")
	}
}

// TestHTTPChaosForCoversRegistry: over a modest session every scenario
// comes up — the selector is a uniform pick, not a biased one.
func TestHTTPChaosForCoversRegistry(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		sc, _ := HTTPChaosFor(1, i)
		seen[sc.Name] = true
	}
	for _, name := range HTTPChaosNames() {
		if !seen[name] {
			t.Errorf("scenario %q never selected in 200 draws", name)
		}
	}
}

// TestHTTPChaosPlaneDisjointFromMessages: the HTTP plane's derivation
// tags (3, 4) must not collide with the message planes (1, 2) — a chaos
// session and a fault-injection session sharing one seed stay
// independent streams.
func TestHTTPChaosPlaneDisjointFromMessages(t *testing.T) {
	for i := uint64(0); i < 32; i++ {
		httpPick := deriveState(5, 3, i)
		httpRNG := deriveState(5, 4, i)
		for plane := uint64(1); plane <= 2; plane++ {
			if s := deriveState(5, plane, i); s == httpPick || s == httpRNG {
				t.Fatalf("derivation collision at index %d, plane %d", i, plane)
			}
		}
	}
}
