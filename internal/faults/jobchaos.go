// Job-tier chaos: the async sibling of the HTTP-boundary scenarios.
// Where HTTPChaos rewrites one HTTP exchange, these helpers attack the
// durable job tier at its three weak points — the worker mid-attempt,
// the journal file between boots, and the submission path under client
// retry storms. They are deliberately small, deterministic building
// blocks: tests in internal/jobs and cmd/dipserve compose them into the
// crash/replay/dedup assertions the tier's robustness claims rest on.
package faults

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sync"
)

// WorkerKill wraps a job-tier run function so that seed-deterministically
// chosen attempts die by panic mid-attempt — the process-internal
// equivalent of kill -9 on a worker. kills is the number of initial
// calls (in arrival order) that panic; after the budget is spent the
// inner function runs untouched, so a pool with retries must converge.
// The wrapper is safe for concurrent workers.
func WorkerKill(seed int64, kills int, inner func(ctx context.Context, payload json.RawMessage) (json.RawMessage, error)) func(ctx context.Context, payload json.RawMessage) (json.RawMessage, error) {
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(seed))
	remaining := kills
	return func(ctx context.Context, payload json.RawMessage) (json.RawMessage, error) {
		mu.Lock()
		kill := remaining > 0
		if kill {
			remaining--
			// Burn one rng draw per kill so distinct seeds produce
			// distinct panic payloads — useful when logs from two chaos
			// sessions must be told apart.
			_ = rng.Int63()
		}
		mu.Unlock()
		if kill {
			panic(fmt.Sprintf("faults: worker-kill (seed %d)", seed))
		}
		return inner(ctx, payload)
	}
}

// TruncateJournalTail chops n bytes off the end of the journal at path,
// simulating the torn final write of a SIGKILL'd process. Replay must
// recover everything before the torn record and drop only the tail.
func TruncateJournalTail(path string, n int64) error {
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	size := info.Size() - n
	if size < 0 {
		size = 0
	}
	return os.Truncate(path, size)
}

// GarbleJournalTail overwrites the last n bytes of the journal with
// seed-deterministic garbage — a torn write that left bytes behind
// instead of cutting them. Replay must stop at the garbage, not crash.
func GarbleJournalTail(path string, seed int64, n int64) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return err
	}
	if n > info.Size() {
		n = info.Size()
	}
	garbage := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(garbage)
	// Keep newlines out so the garbage stays one undecodable line
	// rather than several.
	for i := range garbage {
		if garbage[i] == '\n' {
			garbage[i] = 'x'
		}
	}
	_, err = f.WriteAt(garbage, info.Size()-n)
	return err
}

// DupStormResult summarizes a duplicate-submission storm.
type DupStormResult struct {
	// IDs is the set of distinct job IDs the service answered with; an
	// idempotent submission path yields exactly one.
	IDs map[string]int
	// Statuses tallies HTTP statuses across the storm.
	Statuses map[int]int
	// Transport counts exchanges that failed before a status arrived.
	Transport int
}

// DupSubmitStorm fires k concurrent POST /v1/jobs submissions carrying
// the same Idempotency-Key and body at base (e.g. "http://host:port").
// Every 2xx answer's job id is tallied; an idempotent service answers
// all of them with one id.
func DupSubmitStorm(base, key string, body []byte, k int) DupStormResult {
	res := DupStormResult{IDs: map[string]int{}, Statuses: map[int]int{}}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", bytes.NewReader(body))
			if err != nil {
				mu.Lock()
				res.Transport++
				mu.Unlock()
				return
			}
			req.Header.Set("Content-Type", "application/json")
			req.Header.Set("Idempotency-Key", key)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				mu.Lock()
				res.Transport++
				mu.Unlock()
				return
			}
			var env struct {
				ID string `json:"id"`
			}
			derr := json.NewDecoder(resp.Body).Decode(&env)
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			mu.Lock()
			res.Statuses[resp.StatusCode]++
			if derr == nil && resp.StatusCode >= 200 && resp.StatusCode < 300 && env.ID != "" {
				res.IDs[env.ID]++
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	return res
}
