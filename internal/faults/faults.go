// Package faults is a deterministic, seed-derived library of composable
// message-fault injectors for testing verifier robustness: the soundness
// condition of the paper quantifies over *every* prover, so the test
// surface must include arbitrary deviations, not just the handcrafted
// cheaters in internal/core.
//
// An Injector rewrites one message delivery. Adapters compose injectors
// into the engine's two corruption hooks: Corruptor targets the
// prover→node plane (network.Options.Corrupt) and ExchangeCorruptor the
// node→node forward/digest plane (network.Options.CorruptExchange). All
// randomness is derived statelessly from (seed, plane, round, from, to),
// so a fault schedule is a pure function of the run seed: the sequential
// and concurrent engines — which invoke exchange-plane corruptors in
// different orders and from different goroutines — observe the identical
// schedule, and so stay bit-identical under injection (asserted by the
// engine-equivalence suite).
package faults

import (
	"math/rand"
	"sort"
	"sync"

	"dip/internal/network"
	"dip/internal/wire"
)

// Plane identifies which message plane a delivery belongs to.
type Plane string

const (
	// PlaneProver is the prover→node plane (Merlin responses).
	PlaneProver Plane = "prover"
	// PlaneExchange is the node→node plane (post-Merlin forwards/digests
	// and, under Spec.ShareChallenges, Arthur-round challenge exchanges).
	PlaneExchange Plane = "exchange"
)

// Context describes one message delivery to an Injector.
type Context struct {
	// Plane is the message plane of this delivery.
	Plane Plane
	// Round is the Merlin-round index on the prover plane and the spec
	// round index on the exchange plane (each plane's native coordinate —
	// the one the engine hands its corruptor).
	Round int
	// From is the sending node on the exchange plane and -1 on the prover
	// plane (the sender is the prover).
	From int
	// To is the receiving node.
	To int
	// Nodes is the number of nodes in the run.
	Nodes int
	// Seed is the adapter's base seed, exposed for injectors that need
	// randomness shared across deliveries (e.g. Equivocate's per-round
	// victim choice, which must not depend on To).
	Seed int64
}

// Injector rewrites one delivered message. rng is a private,
// deterministic stream for this delivery, derived from (Seed, Plane,
// Round, From, To) — two deliveries never share a stream, and the same
// delivery always sees the same stream regardless of engine or call
// order. Injectors must not mutate m.Data in place (the engine may
// deliver the same backing array to several receivers); they return
// either m unchanged or a fresh message.
type Injector func(rng *rand.Rand, ctx Context, m wire.Message) wire.Message

// BitFlip flips one uniformly random payload bit. Empty messages pass
// through.
func BitFlip() Injector {
	return func(rng *rand.Rand, _ Context, m wire.Message) wire.Message {
		if m.Bits <= 0 {
			return m
		}
		out := clone(m)
		i := rng.Intn(m.Bits)
		out.Data[i/8] ^= 1 << (uint(i) % 8)
		return out
	}
}

// Truncate keeps only the first half of the message's bits (a model of a
// cut-off transmission). Already-empty messages pass through.
func Truncate() Injector {
	return func(_ *rand.Rand, _ Context, m wire.Message) wire.Message {
		if m.Bits <= 0 {
			return m
		}
		nb := m.Bits / 2
		data := make([]byte, (nb+7)/8)
		copy(data, m.Data)
		return wire.Message{Data: data, Bits: nb}
	}
}

// Drop replaces the message with the empty message (a lost delivery; the
// engine model is synchronous, so "lost" means "arrived empty").
func Drop() Injector {
	return func(_ *rand.Rand, _ Context, m wire.Message) wire.Message {
		return wire.Empty
	}
}

// Replay delivers the message from the previous round on the same channel
// (same plane and (from, to) pair) instead of the current one; the first
// delivery on each channel passes through. Stateful: build a fresh
// injector per run. Safe under either engine because rounds ascend per
// directed pair in both, so the per-channel history is order-independent
// even though global call orders differ.
func Replay() Injector {
	type channel struct {
		plane    Plane
		from, to int
	}
	var mu sync.Mutex
	prev := make(map[channel]wire.Message)
	return func(_ *rand.Rand, ctx Context, m wire.Message) wire.Message {
		k := channel{ctx.Plane, ctx.From, ctx.To}
		mu.Lock()
		defer mu.Unlock()
		out, ok := prev[k]
		prev[k] = m
		if !ok {
			return m
		}
		return out
	}
}

// NodeSwap misdelivers prover messages by one position: node v receives
// the response addressed to node v-1 (node 0 keeps its own). A true
// pairwise swap is impossible inside a per-message corruptor — each
// delivery must be produced before the next message is seen — so the
// one-position shift is the canonical misrouting fault; it breaks any
// protocol whose per-node advice is node-specific. Prover plane only
// (exchange deliveries pass through: their interleaving is
// engine-dependent, so no shift over them is order-independent).
// Stateful: build a fresh injector per run. Relies on the engine contract
// that prover-plane corruptor calls ascend in node order within a round.
func NodeSwap() Injector {
	var mu sync.Mutex
	last := make(map[int]wire.Message) // per Merlin round
	return func(_ *rand.Rand, ctx Context, m wire.Message) wire.Message {
		if ctx.Plane != PlaneProver {
			return m
		}
		mu.Lock()
		defer mu.Unlock()
		out, ok := last[ctx.Round]
		last[ctx.Round] = m
		if !ok || ctx.To == 0 {
			return m
		}
		return out
	}
}

// Equivocate breaks broadcast consistency: per (round, sender) one victim
// node — chosen from (Seed, Plane, Round, From), never from To — receives
// a copy with one flipped bit while everyone else receives the original.
// This is exactly the cheat Definition 1's neighbor exchange exists to
// catch: "broadcast" is unicast plus neighbor comparison, and a message
// that differs at one receiver must surface as a neighbor mismatch. On
// the exchange plane the victim may not be a neighbor of the sender, in
// which case that sender's round is unaffected.
func Equivocate() Injector {
	return equivocate(0)
}

// EquivocateWithin is Equivocate restricted to the first width bits of
// each message. It exists for protocols whose decide procedure reads only
// a prefix (or subset) of each neighbor copy: plain Equivocate can land
// its flipped bit in positions the receiver never consumes, so "the fault
// is detected" is not a property such a protocol claims. Constraining the
// flip to a region every receiver provably reads (dsym-dam compares the
// leading echo field of every neighbor copy) restores the claim without
// weakening the fault — the sender still sends inconsistent copies.
func EquivocateWithin(width int) Injector {
	if width <= 0 {
		panic("faults: EquivocateWithin needs a positive width")
	}
	return equivocate(width)
}

// equivocate implements Equivocate and EquivocateWithin; limit <= 0 means
// the whole message is fair game.
func equivocate(limit int) Injector {
	return func(rng *rand.Rand, ctx Context, m wire.Message) wire.Message {
		if ctx.Nodes <= 0 || m.Bits <= 0 {
			return m
		}
		victim := int(deriveState(ctx.Seed, planeTag(ctx.Plane), uint64(ctx.Round), uint64(ctx.From+1), 0) % uint64(ctx.Nodes))
		if ctx.To != victim {
			return m
		}
		w := m.Bits
		if limit > 0 && limit < w {
			w = limit
		}
		out := clone(m)
		i := rng.Intn(w)
		out.Data[i/8] ^= 1 << (uint(i) % 8)
		return out
	}
}

// Chain applies injectors left to right.
func Chain(injs ...Injector) Injector {
	return func(rng *rand.Rand, ctx Context, m wire.Message) wire.Message {
		for _, inj := range injs {
			m = inj(rng, ctx, m)
		}
		return m
	}
}

// WithProbability applies inj to each delivery independently with
// probability p (drawn from the delivery's private stream, so the
// decision is deterministic per delivery). Note that gating a *stateful*
// injector (Replay, NodeSwap) this way skips its state updates on
// unselected deliveries; those injectors are meant to run at p = 1.
func WithProbability(p float64, inj Injector) Injector {
	return func(rng *rand.Rand, ctx Context, m wire.Message) wire.Message {
		if rng.Float64() >= p {
			return m
		}
		return inj(rng, ctx, m)
	}
}

// OnRounds restricts inj to the listed rounds (in the plane's native
// round coordinate, see Context.Round).
func OnRounds(inj Injector, rounds ...int) Injector {
	set := make(map[int]bool, len(rounds))
	for _, r := range rounds {
		set[r] = true
	}
	return func(rng *rand.Rand, ctx Context, m wire.Message) wire.Message {
		if !set[ctx.Round] {
			return m
		}
		return inj(rng, ctx, m)
	}
}

// OnNodes restricts inj to deliveries whose receiver is in nodes.
func OnNodes(inj Injector, nodes ...int) Injector {
	set := make(map[int]bool, len(nodes))
	for _, v := range nodes {
		set[v] = true
	}
	return func(rng *rand.Rand, ctx Context, m wire.Message) wire.Message {
		if !set[ctx.To] {
			return m
		}
		return inj(rng, ctx, m)
	}
}

// Corruptor composes inj into a network.Corruptor for the prover plane of
// an n-node run. seed selects the fault schedule; reusing the run seed
// ties the schedule to the trial.
func Corruptor(seed int64, n int, inj Injector) network.Corruptor {
	return func(merlinRound, node int, m wire.Message) wire.Message {
		ctx := Context{Plane: PlaneProver, Round: merlinRound, From: -1, To: node, Nodes: n, Seed: seed}
		return inj(deliveryRNG(ctx), ctx, m)
	}
}

// ExchangeCorruptor composes inj into a network.ExchangeCorruptor for the
// node→node plane of an n-node run. The derived randomness depends only
// on (seed, round, from, to), which satisfies the order-independence
// contract network.ExchangeCorruptor demands.
func ExchangeCorruptor(seed int64, n int, inj Injector) network.ExchangeCorruptor {
	return func(round, from, to int, m wire.Message) wire.Message {
		ctx := Context{Plane: PlaneExchange, Round: round, From: from, To: to, Nodes: n, Seed: seed}
		return inj(deliveryRNG(ctx), ctx, m)
	}
}

// Class is a named fault family, the unit the fault matrix and the CLIs
// select by. New returns a fresh injector because some classes (Replay,
// NodeSwap) carry per-run state.
type Class struct {
	// Name is the CLI-facing identifier, e.g. "bitflip".
	Name string
	// Planes lists the planes the class is meaningful on.
	Planes []Plane
	// New builds a fresh injector for one run.
	New func() Injector
}

var registry = map[string]Class{
	"bitflip":    {Name: "bitflip", Planes: []Plane{PlaneProver, PlaneExchange}, New: BitFlip},
	"truncate":   {Name: "truncate", Planes: []Plane{PlaneProver, PlaneExchange}, New: Truncate},
	"drop":       {Name: "drop", Planes: []Plane{PlaneProver, PlaneExchange}, New: Drop},
	"replay":     {Name: "replay", Planes: []Plane{PlaneProver, PlaneExchange}, New: Replay},
	"nodeswap":   {Name: "nodeswap", Planes: []Plane{PlaneProver}, New: NodeSwap},
	"equivocate": {Name: "equivocate", Planes: []Plane{PlaneProver, PlaneExchange}, New: Equivocate},
}

// ByName looks a fault class up by its CLI name.
func ByName(name string) (Class, bool) {
	c, ok := registry[name]
	return c, ok
}

// Names returns all class names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Supports reports whether the class is meaningful on plane p.
func (c Class) Supports(p Plane) bool {
	for _, q := range c.Planes {
		if q == p {
			return true
		}
	}
	return false
}

func clone(m wire.Message) wire.Message {
	return wire.Message{Data: append([]byte(nil), m.Data...), Bits: m.Bits}
}

// deliveryRNG derives the delivery's private stream. The state mixing is
// splitmix64, same family as the engine's node RNGs but over a disjoint
// key space (the engine never mixes a plane tag).
func deliveryRNG(ctx Context) *rand.Rand {
	state := deriveState(ctx.Seed, planeTag(ctx.Plane), uint64(ctx.Round), uint64(ctx.From+1), uint64(ctx.To))
	return rand.New(&smSource{state: state})
}

func planeTag(p Plane) uint64 {
	if p == PlaneExchange {
		return 2
	}
	return 1
}

// deriveState folds the delivery coordinates into one 64-bit state with
// the splitmix64 finalizer applied between words, so nearby coordinates
// yield unrelated streams.
func deriveState(seed int64, words ...uint64) uint64 {
	z := uint64(seed)
	for _, w := range words {
		z = fmix64(z*0x9E3779B97F4A7C15 + w*0xBF58476D1CE4E5B9)
	}
	return z
}

func fmix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// smSource is a rand.Source64 running splitmix64, duplicated from the
// engine (which keeps its source private) — 8 bytes of state, O(1) seed.
type smSource struct{ state uint64 }

func (s *smSource) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (s *smSource) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *smSource) Seed(seed int64) { s.state = uint64(seed) }
