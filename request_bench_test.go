package dip

import (
	"testing"
)

// cycleEdges returns the n-cycle edge list: the load generator's instance.
func cycleEdges(n int) [][2]int {
	edges := make([][2]int, n)
	for i := 0; i < n; i++ {
		edges[i] = [2]int{i, (i + 1) % n}
	}
	return edges
}

// BenchmarkRequestSymDMAM times the full service request path — dispatch,
// graph build, protocol setup, engine run, report assembly — on the
// LOAD_seed1 workload (sym-dmam on a 64-cycle).
func BenchmarkRequestSymDMAM(b *testing.B) {
	edges := cycleEdges(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := Request{Protocol: "sym-dmam", N: 64, Edges: edges, Options: Options{Seed: int64(i)}}
		rep, err := Run(req)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Accepted {
			b.Fatal("rejected")
		}
	}
}

// BenchmarkRequestSymDMAMFixedSeed is the same workload at one fixed seed:
// the batch-mode shape, where setup is fully amortizable.
func BenchmarkRequestSymDMAMFixedSeed(b *testing.B) {
	edges := cycleEdges(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := Request{Protocol: "sym-dmam", N: 64, Edges: edges, Options: Options{Seed: 7}}
		rep, err := Run(req)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Accepted {
			b.Fatal("rejected")
		}
	}
}
