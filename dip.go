// Package dip is the public facade of the interactive-distributed-proofs
// library: a reproduction of "Interactive Distributed Proofs" (Kol, Oshman,
// Saxena; PODC 2018).
//
// The paper's model: n network nodes, connected by a graph, interact over a
// constant number of rounds with a single all-seeing but untrusted prover
// to decide whether the graph satisfies a property; each node sees only its
// own neighborhood and the prover messages delivered to itself and its
// neighbors; the cost of a protocol is the number of bits each node
// exchanges with the prover.
//
// This package exposes the paper's protocols through plain-Go entry points
// (edge lists in, Report out). The full machinery — the proof engine, the
// hash families, graph generators, adversarial provers, the lower-bound
// framework and the experiment harness — lives in the internal packages and
// is exercised by the examples, the experiment binary (cmd/dipbench) and
// the benchmark suite.
package dip

import (
	"fmt"

	"dip/internal/core"
	"dip/internal/graph"
	"dip/internal/network"
)

// Options configure a protocol run.
type Options struct {
	// Seed makes runs reproducible: equal seeds (with the same inputs)
	// yield identical node randomness. The prover additionally derives its
	// hash moduli from Seed.
	Seed int64
	// Repetitions is the parallel-repetition count of the GNI protocols
	// (ignored elsewhere). 0 selects core.DefaultGNIRepetitions;
	// negative values are rejected with an error.
	Repetitions int
}

// resolveRepetitions maps Options.Repetitions onto a concrete count: 0
// selects the shared default, negatives are invalid.
func resolveRepetitions(reps int) (int, error) {
	if reps < 0 {
		return 0, fmt.Errorf("dip: Repetitions must be non-negative, got %d (0 selects the default of %d)",
			reps, core.DefaultGNIRepetitions)
	}
	if reps == 0 {
		return core.DefaultGNIRepetitions, nil
	}
	return reps, nil
}

// Report summarizes a protocol run.
type Report struct {
	// Protocol is the protocol's name, e.g. "sym-dmam".
	Protocol string
	// Accepted is true iff every node accepted. On yes-instances with the
	// honest prover this holds with probability > 2/3 (for the protocols
	// here: essentially always); on no-instances no prover pushes it above
	// 1/3.
	Accepted bool
	// Decisions holds the per-node outputs.
	Decisions []bool
	// MaxProverBits is the paper's cost measure: the maximum over nodes of
	// bits exchanged with the prover, challenges included.
	MaxProverBits int
	// TotalProverBits sums prover-communication bits over all nodes.
	TotalProverBits int
	// MaxNodeToNodeBits is the largest number of bits any node sent to its
	// neighbors.
	MaxNodeToNodeBits int
}

func report(name string, res *network.Result) Report {
	return Report{
		Protocol:          name,
		Accepted:          res.Accepted,
		Decisions:         res.Decisions,
		MaxProverBits:     res.Cost.MaxProverBits(),
		TotalProverBits:   res.Cost.TotalProverBits(),
		MaxNodeToNodeBits: res.Cost.MaxNodeToNodeBits(),
	}
}

// buildGraph validates an edge list and builds the graph.
func buildGraph(n int, edges [][2]int) (*graph.Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("dip: graph needs at least one vertex, got %d", n)
	}
	g := graph.New(n)
	for _, e := range edges {
		u, v := e[0], e[1]
		if u < 0 || u >= n || v < 0 || v >= n {
			return nil, fmt.Errorf("dip: edge {%d,%d} outside vertex range [0,%d)", u, v, n)
		}
		if u == v {
			return nil, fmt.Errorf("dip: self-loop at %d", u)
		}
		g.AddEdge(u, v)
	}
	return g, nil
}

// ProveSymmetry runs Protocol 1 (Theorem 1.1): the O(log n)-bit dMAM
// interactive proof that the graph has a non-trivial automorphism, against
// the honest prover (which searches for the automorphism itself). The graph
// must be connected.
func ProveSymmetry(n int, edges [][2]int, opts Options) (Report, error) {
	g, err := buildGraph(n, edges)
	if err != nil {
		return Report{}, err
	}
	proto, err := core.NewSymDMAM(n, opts.Seed)
	if err != nil {
		return Report{}, err
	}
	res, err := proto.Run(g, proto.HonestProver(), opts.Seed)
	if err != nil {
		return Report{}, err
	}
	return report("sym-dmam", res), nil
}

// ProveSymmetryChallengeFirst runs Protocol 2 (Theorem 1.3): the
// O(n log n)-bit dAM proof of symmetry, where the nodes speak first. The
// graph must be connected.
func ProveSymmetryChallengeFirst(n int, edges [][2]int, opts Options) (Report, error) {
	g, err := buildGraph(n, edges)
	if err != nil {
		return Report{}, err
	}
	proto, err := core.NewSymDAM(n, opts.Seed)
	if err != nil {
		return Report{}, err
	}
	res, err := proto.Run(g, proto.HonestProver(), opts.Seed)
	if err != nil {
		return Report{}, err
	}
	return report("sym-dam", res), nil
}

// ProveDumbbellSymmetry runs the DSym dAM protocol of Theorem 1.2's upper
// bound: O(log n) bits for dumbbell graphs with the fixed side-swapping
// automorphism. side and half are the (n, r) of Definition 5; the graph
// must have 2·side + 2·half + 1 vertices.
func ProveDumbbellSymmetry(side, half int, edges [][2]int, opts Options) (Report, error) {
	proto, err := core.NewDSymDAM(side, half, opts.Seed)
	if err != nil {
		return Report{}, err
	}
	g, err := buildGraph(proto.N(), edges)
	if err != nil {
		return Report{}, err
	}
	res, err := proto.Run(g, proto.HonestProver(), opts.Seed)
	if err != nil {
		return Report{}, err
	}
	return report("dsym-dam", res), nil
}

// ProveNonIsomorphism runs the distributed Goldwasser–Sipser dAMAM protocol
// of Theorem 1.5 on the pair (G₀, G₁): G₀ (edges0) is the network graph and
// G₁ (edges1) is handed to the nodes as inputs, row by row. Both graphs
// should be connected and asymmetric (the paper's promise; compose with
// ProveSymmetry to discharge it). Acceptance indicates non-isomorphism.
//
// The honest prover enumerates up to 2·n! permutations per repetition;
// keep n at most about 8.
func ProveNonIsomorphism(n int, edges0, edges1 [][2]int, opts Options) (Report, error) {
	g0, err := buildGraph(n, edges0)
	if err != nil {
		return Report{}, err
	}
	g1, err := buildGraph(n, edges1)
	if err != nil {
		return Report{}, err
	}
	k, err := resolveRepetitions(opts.Repetitions)
	if err != nil {
		return Report{}, err
	}
	proto, err := core.NewGNIDAMAM(n, k, opts.Seed)
	if err != nil {
		return Report{}, err
	}
	res, err := proto.Run(g0, g1, proto.HonestProver(), opts.Seed)
	if err != nil {
		return Report{}, err
	}
	return report("gni-damam", res), nil
}

// SymmetryAdviceBits returns the per-node advice length of the
// non-interactive ("distributed NP") baseline for symmetry — the Θ(n²)
// cost that Theorems 1.1–1.2 beat exponentially.
func SymmetryAdviceBits(n int) (int, error) {
	lcp, err := core.NewSymLCP(n)
	if err != nil {
		return 0, err
	}
	return lcp.AdviceBits(), nil
}

// ProveSymmetryNonInteractive runs the Θ(n²)-bit LCP baseline.
func ProveSymmetryNonInteractive(n int, edges [][2]int, opts Options) (Report, error) {
	g, err := buildGraph(n, edges)
	if err != nil {
		return Report{}, err
	}
	lcp, err := core.NewSymLCP(n)
	if err != nil {
		return Report{}, err
	}
	res, err := lcp.Run(g, lcp.HonestProver(), opts.Seed)
	if err != nil {
		return Report{}, err
	}
	return report("sym-lcp", res), nil
}

// IsSymmetric decides symmetry centrally (no protocol): a ground-truth
// helper for building scenarios and checking protocol outcomes.
func IsSymmetric(n int, edges [][2]int) (bool, error) {
	g, err := buildGraph(n, edges)
	if err != nil {
		return false, err
	}
	return graph.FindNontrivialAutomorphism(g) != nil, nil
}

// AreIsomorphic decides isomorphism centrally (no protocol): the
// ground-truth helper for GNI scenarios.
func AreIsomorphic(n int, edges0, edges1 [][2]int) (bool, error) {
	g0, err := buildGraph(n, edges0)
	if err != nil {
		return false, err
	}
	g1, err := buildGraph(n, edges1)
	if err != nil {
		return false, err
	}
	return graph.AreIsomorphic(g0, g1), nil
}

// ProveNonIsomorphismGeneral runs the promise-free GNI protocol (the
// automorphism-compensated extension): unlike ProveNonIsomorphism it is
// correct on symmetric graphs too. The prover enumerates the automorphism
// groups by brute force, so n is limited to 8.
func ProveNonIsomorphismGeneral(n int, edges0, edges1 [][2]int, opts Options) (Report, error) {
	g0, err := buildGraph(n, edges0)
	if err != nil {
		return Report{}, err
	}
	g1, err := buildGraph(n, edges1)
	if err != nil {
		return Report{}, err
	}
	k, err := resolveRepetitions(opts.Repetitions)
	if err != nil {
		return Report{}, err
	}
	proto, err := core.NewGNIGeneral(n, k, opts.Seed)
	if err != nil {
		return Report{}, err
	}
	res, err := proto.Run(g0, g1, proto.HonestProver(), opts.Seed)
	if err != nil {
		return Report{}, err
	}
	return report("gni-general", res), nil
}

// ProveSymmetryFingerprinted runs the randomized proof-labeling scheme
// ([4]-style): the prover's advice is the full Θ(n²) certificate, but the
// nodes verify mutual consistency by exchanging O(log n)-bit fingerprints
// instead of the advice itself. Compare Report.MaxNodeToNodeBits against
// ProveSymmetryNonInteractive to see the saving.
func ProveSymmetryFingerprinted(n int, edges [][2]int, opts Options) (Report, error) {
	g, err := buildGraph(n, edges)
	if err != nil {
		return Report{}, err
	}
	rpls, err := core.NewSymRPLS(n, opts.Seed)
	if err != nil {
		return Report{}, err
	}
	res, err := rpls.Run(g, rpls.HonestProver(), opts.Seed)
	if err != nil {
		return Report{}, err
	}
	return report("sym-rpls", res), nil
}

// ProveInducedNonIsomorphism runs the marked formulation of GNI (the
// paper's Section 2.3 alternative): edges describes the single network
// graph, and marks assigns each node 0, 1 or -1 (⊥). The protocol decides
// whether the subgraph induced by the 0-marked nodes is non-isomorphic to
// the one induced by the 1-marked nodes; both marked sets must have the
// same size k, and the induced subgraphs should be asymmetric (the paper's
// promise). The prover enumerates 2·k! permutations per repetition.
func ProveInducedNonIsomorphism(n int, edges [][2]int, marks []int, opts Options) (Report, error) {
	g, err := buildGraph(n, edges)
	if err != nil {
		return Report{}, err
	}
	if len(marks) != n {
		return Report{}, fmt.Errorf("dip: %d marks for %d nodes", len(marks), n)
	}
	coreMarks := make([]core.Mark, n)
	k := 0
	for v, m := range marks {
		switch m {
		case 0:
			coreMarks[v] = core.MarkZero
			k++
		case 1:
			coreMarks[v] = core.MarkOne
		case -1:
			coreMarks[v] = core.MarkNone
		default:
			return Report{}, fmt.Errorf("dip: mark %d at node %d (want 0, 1 or -1)", m, v)
		}
	}
	reps, err := resolveRepetitions(opts.Repetitions)
	if err != nil {
		return Report{}, err
	}
	proto, err := core.NewMarkedGNI(n, k, reps, opts.Seed)
	if err != nil {
		return Report{}, err
	}
	res, err := proto.Run(g, coreMarks, proto.HonestProver(), opts.Seed)
	if err != nil {
		return Report{}, err
	}
	return report("gni-marked", res), nil
}
