// Package dip is the public facade of the interactive-distributed-proofs
// library: a reproduction of "Interactive Distributed Proofs" (Kol, Oshman,
// Saxena; PODC 2018).
//
// The paper's model: n network nodes, connected by a graph, interact over a
// constant number of rounds with a single all-seeing but untrusted prover
// to decide whether the graph satisfies a property; each node sees only its
// own neighborhood and the prover messages delivered to itself and its
// neighbors; the cost of a protocol is the number of bits each node
// exchanges with the prover.
//
// Every protocol is reachable through one entry point: build a Request
// (protocol name, graph as an edge list, options) and call Run — or
// RunContext to bound the run by a context. Protocols lists the registry.
// The historical per-protocol functions (ProveSymmetry, ...) remain as
// thin wrappers over Run for source compatibility. The full machinery —
// the proof engine, the hash families, graph generators, adversarial
// provers, the lower-bound framework and the experiment harness — lives in
// the internal packages and is exercised by the examples, the experiment
// binary (cmd/dipbench), the verification service (cmd/dipserve) and the
// benchmark suite.
package dip

import (
	"time"

	"dip/internal/core"
	"dip/internal/graph"
	"dip/internal/network"
)

// Options configure a protocol run. The JSON form is part of the
// dip-report/v1 request wire format consumed by cmd/dipserve.
type Options struct {
	// Seed makes runs reproducible: equal seeds (with the same inputs)
	// yield identical node randomness. The prover additionally derives its
	// hash moduli from Seed.
	Seed int64 `json:"seed"`
	// Repetitions is the parallel-repetition count of the GNI protocols
	// (ignored elsewhere). 0 selects core.DefaultGNIRepetitions;
	// negative values are rejected with an error.
	Repetitions int `json:"repetitions,omitempty"`
	// Timeout, when positive, bounds the prover's per-round response time
	// (plumbed to the engine's ProverTimeout): a prover that has not
	// answered within it aborts the run with a structured engine error
	// instead of hanging the caller. 0 means no bound; negative values are
	// rejected with an error. The field name carries the unit so the wire
	// form stays unambiguous.
	Timeout time.Duration `json:"timeout_ns,omitempty"`
}

// resolveRepetitions maps Options.Repetitions onto a concrete count: 0
// selects the shared default, negatives are invalid.
func resolveRepetitions(reps int) (int, error) {
	if reps < 0 {
		return 0, badRequestf("dip: Repetitions must be non-negative, got %d (0 selects the default of %d)",
			reps, core.DefaultGNIRepetitions)
	}
	if reps == 0 {
		return core.DefaultGNIRepetitions, nil
	}
	return reps, nil
}

// resolveTimeout validates Options.Timeout: 0 disables the bound,
// negatives are invalid.
func resolveTimeout(d time.Duration) (time.Duration, error) {
	if d < 0 {
		return 0, badRequestf("dip: Timeout must be non-negative, got %v (0 disables the prover deadline)", d)
	}
	return d, nil
}

// Report summarizes a protocol run.
type Report struct {
	// Protocol is the protocol's name, e.g. "sym-dmam".
	Protocol string
	// Accepted is true iff every node accepted. On yes-instances with the
	// honest prover this holds with probability > 2/3 (for the protocols
	// here: essentially always); on no-instances no prover pushes it above
	// 1/3.
	Accepted bool
	// Decisions holds the per-node outputs.
	Decisions []bool
	// MaxProverBits is the paper's cost measure: the maximum over nodes of
	// bits exchanged with the prover, challenges included.
	MaxProverBits int
	// TotalProverBits sums prover-communication bits over all nodes.
	TotalProverBits int
	// MaxNodeToNodeBits is the largest number of bits any node sent to its
	// neighbors.
	MaxNodeToNodeBits int
	// MaxNode is the lowest-indexed node attaining MaxProverBits; the
	// per-round breakdown below is taken at this node, so its prover-bit
	// entries sum exactly to MaxProverBits.
	MaxNode int
	// PerRound is the round-by-round cost at MaxNode, one entry per round
	// of the protocol's schedule.
	PerRound []RoundCost
}

// RoundCost is one round of Report.PerRound: the bits MaxNode exchanged on
// each plane during that round.
type RoundCost struct {
	// Kind is "Arthur" or "Merlin".
	Kind string `json:"kind"`
	// ToProver counts challenge bits sent to the prover in this round.
	ToProver int `json:"to_prover"`
	// FromProver counts response bits received from the prover.
	FromProver int `json:"from_prover"`
	// NodeToNode counts bits forwarded to neighbors.
	NodeToNode int `json:"node_to_node"`
}

// ReportFromResult shapes a raw engine result into a Report. It exists for
// in-module tools (cmd/dipsim) that drive the engine directly — for fault
// injection or transcript recording — but emit the same Report and
// dip-report/v1 document as Run. network is an internal package, so the
// signature is unusable outside this module.
func ReportFromResult(name string, res *network.Result) Report {
	return report(name, res)
}

func report(name string, res *network.Result) Report {
	v := res.Cost.ArgMaxProverNode()
	perRound := make([]RoundCost, len(res.Cost.PerRound))
	for k := range res.Cost.PerRound {
		r := &res.Cost.PerRound[k]
		perRound[k] = RoundCost{
			Kind:       r.Kind.String(),
			ToProver:   r.ToProver[v],
			FromProver: r.FromProver[v],
			NodeToNode: r.NodeToNode[v],
		}
	}
	return Report{
		Protocol:          name,
		Accepted:          res.Accepted,
		Decisions:         res.Decisions,
		MaxProverBits:     res.Cost.MaxProverBits(),
		TotalProverBits:   res.Cost.TotalProverBits(),
		MaxNodeToNodeBits: res.Cost.MaxNodeToNodeBits(),
		MaxNode:           v,
		PerRound:          perRound,
	}
}

// buildGraph validates an edge list and builds the graph.
func buildGraph(n int, edges [][2]int) (*graph.Graph, error) {
	if n < 1 {
		return nil, badRequestf("dip: graph needs at least one vertex, got %d", n)
	}
	g := graph.New(n)
	for _, e := range edges {
		u, v := e[0], e[1]
		if u < 0 || u >= n || v < 0 || v >= n {
			return nil, badRequestf("dip: edge {%d,%d} outside vertex range [0,%d)", u, v, n)
		}
		if u == v {
			return nil, badRequestf("dip: self-loop at %d", u)
		}
		g.AddEdge(u, v)
	}
	return g, nil
}

// ProveSymmetry runs Protocol 1 (Theorem 1.1): the O(log n)-bit dMAM
// interactive proof that the graph has a non-trivial automorphism, against
// the honest prover (which searches for the automorphism itself). The graph
// must be connected.
func ProveSymmetry(n int, edges [][2]int, opts Options) (Report, error) {
	return Run(Request{Protocol: "sym-dmam", N: n, Edges: edges, Options: opts})
}

// ProveSymmetryChallengeFirst runs Protocol 2 (Theorem 1.3): the
// O(n log n)-bit dAM proof of symmetry, where the nodes speak first. The
// graph must be connected.
func ProveSymmetryChallengeFirst(n int, edges [][2]int, opts Options) (Report, error) {
	return Run(Request{Protocol: "sym-dam", N: n, Edges: edges, Options: opts})
}

// ProveDumbbellSymmetry runs the DSym dAM protocol of Theorem 1.2's upper
// bound: O(log n) bits for dumbbell graphs with the fixed side-swapping
// automorphism. side and half are the (n, r) of Definition 5; the graph
// must have 2·side + 2·half + 1 vertices.
func ProveDumbbellSymmetry(side, half int, edges [][2]int, opts Options) (Report, error) {
	return Run(Request{Protocol: "dsym-dam", Side: side, Half: half, Edges: edges, Options: opts})
}

// ProveNonIsomorphism runs the distributed Goldwasser–Sipser dAMAM protocol
// of Theorem 1.5 on the pair (G₀, G₁): G₀ (edges0) is the network graph and
// G₁ (edges1) is handed to the nodes as inputs, row by row. Both graphs
// should be connected and asymmetric (the paper's promise; compose with
// ProveSymmetry to discharge it). Acceptance indicates non-isomorphism.
//
// The honest prover enumerates up to 2·n! permutations per repetition;
// keep n at most about 8.
func ProveNonIsomorphism(n int, edges0, edges1 [][2]int, opts Options) (Report, error) {
	return Run(Request{Protocol: "gni-damam", N: n, Edges: edges0, Edges1: edges1, Options: opts})
}

// SymmetryAdviceBits returns the per-node advice length of the
// non-interactive ("distributed NP") baseline for symmetry — the Θ(n²)
// cost that Theorems 1.1–1.2 beat exponentially.
func SymmetryAdviceBits(n int) (int, error) {
	lcp, err := core.NewSymLCP(n)
	if err != nil {
		return 0, err
	}
	return lcp.AdviceBits(), nil
}

// ProveSymmetryNonInteractive runs the Θ(n²)-bit LCP baseline.
func ProveSymmetryNonInteractive(n int, edges [][2]int, opts Options) (Report, error) {
	return Run(Request{Protocol: "sym-lcp", N: n, Edges: edges, Options: opts})
}

// IsSymmetric decides symmetry centrally (no protocol): a ground-truth
// helper for building scenarios and checking protocol outcomes.
func IsSymmetric(n int, edges [][2]int) (bool, error) {
	g, err := buildGraph(n, edges)
	if err != nil {
		return false, err
	}
	return graph.FindNontrivialAutomorphism(g) != nil, nil
}

// AreIsomorphic decides isomorphism centrally (no protocol): the
// ground-truth helper for GNI scenarios.
func AreIsomorphic(n int, edges0, edges1 [][2]int) (bool, error) {
	g0, err := buildGraph(n, edges0)
	if err != nil {
		return false, err
	}
	g1, err := buildGraph(n, edges1)
	if err != nil {
		return false, err
	}
	return graph.AreIsomorphic(g0, g1), nil
}

// ProveNonIsomorphismGeneral runs the promise-free GNI protocol (the
// automorphism-compensated extension): unlike ProveNonIsomorphism it is
// correct on symmetric graphs too. The prover enumerates the automorphism
// groups by brute force, so n is limited to 8.
func ProveNonIsomorphismGeneral(n int, edges0, edges1 [][2]int, opts Options) (Report, error) {
	return Run(Request{Protocol: "gni-general", N: n, Edges: edges0, Edges1: edges1, Options: opts})
}

// ProveSymmetryFingerprinted runs the randomized proof-labeling scheme
// ([4]-style): the prover's advice is the full Θ(n²) certificate, but the
// nodes verify mutual consistency by exchanging O(log n)-bit fingerprints
// instead of the advice itself. Compare Report.MaxNodeToNodeBits against
// ProveSymmetryNonInteractive to see the saving.
func ProveSymmetryFingerprinted(n int, edges [][2]int, opts Options) (Report, error) {
	return Run(Request{Protocol: "sym-rpls", N: n, Edges: edges, Options: opts})
}

// ProveInducedNonIsomorphism runs the marked formulation of GNI (the
// paper's Section 2.3 alternative): edges describes the single network
// graph, and marks assigns each node 0, 1 or -1 (⊥). The protocol decides
// whether the subgraph induced by the 0-marked nodes is non-isomorphic to
// the one induced by the 1-marked nodes; both marked sets must have the
// same size k, and the induced subgraphs should be asymmetric (the paper's
// promise). The prover enumerates 2·k! permutations per repetition.
func ProveInducedNonIsomorphism(n int, edges [][2]int, marks []int, opts Options) (Report, error) {
	return Run(Request{Protocol: "gni-marked", N: n, Edges: edges, Marks: marks, Options: opts})
}
